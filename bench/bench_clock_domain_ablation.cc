/**
 * @file
 * Clock-domain ablation: sweep the DRAM and interconnect clock
 * ratios (relative to the core clock) and decompose the resulting
 * memory latency into pipeline stages, in the spirit of the paper's
 * Figure 1 — adding the clock-ratio dimension the single-clock
 * simulator could not express.
 *
 * Driven through the experiment API: every point is one
 * ExperimentSpec, sweeps run concurrently on the ParallelRunner
 * (`--jobs N`, 0 = hardware concurrency, records stream to
 * `--json/--csv` sinks), and with more than one worker the DRAM
 * sweep is re-run serially to report the measured speedup.
 *
 * Three experiments:
 *   1. DRAM-clock sweep under load (BFS): per-stage latency
 *      breakdown vs DRAM frequency.
 *   2. ICNT-clock sweep under load (BFS).
 *   3. Idle pointer-chase latency vs DRAM clock (Table-I style),
 *      plus the wall-clock effect of every idle fast-forward mode
 *      (off / full / perDomain) on this latency-bound microbench,
 *      with per-domain skipped-tick ratios. `--ff-json FILE`
 *      writes the BENCH_fastforward.json perf-trajectory artifact
 *      CI's Release job uploads.
 */

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "api/parallel_runner.hh"
#include "common/log.hh"
#include "latency/breakdown.hh"

using namespace gpulat;

namespace {

/** gf106 shrunk to 4 SMs / 2 partitions, as config overrides. */
std::vector<std::string>
baseOverrides()
{
    return {"numSms=4", "numPartitions=2",
            "deviceMemBytes=" + std::to_string(64 * 1024 * 1024)};
}

const std::vector<std::string> kDramSweep{"2/1", "1/1", "2/3",
                                          "1/2", "1/3"};
const std::vector<std::string> kIcntSweep{"2/1", "1/1", "1/2"};

double
wallMs(const std::chrono::steady_clock::time_point &t0)
{
    using ms = std::chrono::duration<double, std::milli>;
    return ms(std::chrono::steady_clock::now() - t0).count();
}

ExperimentSpec
loadSpec(const std::string &knob, const std::string &ratio)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "bfs";
    spec.params = {"kind=rmat", "scale=12", "degree=8"};
    spec.overrides = baseOverrides();
    spec.overrides.push_back(knob + "=" + ratio);
    return spec;
}

ExperimentSpec
chaseSpec(const std::vector<std::string> &extra_overrides,
          std::uint64_t timed_accesses)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "pchase";
    spec.params = {"footprintBytes=" +
                       std::to_string(4 * 1024 * 1024), // DRAM
                   "strideBytes=512",
                   "timedAccesses=" +
                       std::to_string(timed_accesses)};
    spec.overrides = baseOverrides();
    for (const std::string &o : extra_overrides)
        spec.overrides.push_back(o);
    return spec;
}

void
printHeader()
{
    std::cout << std::setw(6) << "ratio" << std::setw(12) << "cycles"
              << std::setw(9) << "mean";
    for (std::size_t s = 0; s < kNumStages; ++s)
        std::cout << std::setw(9) << toString(static_cast<Stage>(s));
    std::cout << "\n";
}

void
printPoint(const std::string &label, Cycle cycles,
           const Breakdown &bd)
{
    std::uint64_t total = 0;
    for (auto v : bd.totalByStage)
        total += v;
    const double mean = bd.requests
        ? static_cast<double>(total) / static_cast<double>(bd.requests)
        : 0.0;
    std::cout << std::setw(6) << label << std::setw(12) << cycles
              << std::setw(9) << std::fixed << std::setprecision(1)
              << mean;
    for (auto v : bd.totalByStage) {
        const double pct = total
            ? 100.0 * static_cast<double>(v) /
                  static_cast<double>(total)
            : 0.0;
        std::cout << std::setw(8) << std::setprecision(1) << pct
                  << "%";
    }
    std::cout << "\n";
}

/** @return {all points verified, wall-clock ms}. */
std::pair<bool, double>
sweepUnderLoad(const char *what, const std::string &knob,
               const std::vector<std::string> &sweep,
               std::size_t workers, MultiSink &sinks, bool quiet)
{
    std::vector<ExperimentSpec> specs;
    for (const std::string &ratio : sweep)
        specs.push_back(loadSpec(knob, ratio));

    if (!quiet) {
        std::cout << "\n== " << what
                  << "-clock sweep under load (BFS, RMAT scale 12, "
                  << workers << (workers == 1 ? " job" : " jobs")
                  << ") ==\n"
                  << "stage columns: % of aggregate fetch latency\n";
        printHeader();
    }

    // The chart needs the raw latency traces, so each point's
    // breakdown is computed on the worker thread into its own slot.
    std::vector<Breakdown> breakdowns(specs.size());
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcomes = ParallelRunner(workers).run(
        specs,
        [&](std::size_t index, Gpu &gpu, const ExperimentRecord &) {
            breakdowns[index] =
                computeBreakdown(gpu.latencies().traces(), 32);
        });
    const double ms = wallMs(t0);

    bool all_correct = true;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (outcomes[i].failed) {
            std::cout << sweep[i]
                      << ": ERROR: " << outcomes[i].error << "\n";
            all_correct = false;
            continue;
        }
        const ExperimentRecord &rec = outcomes[i].record;
        if (!quiet)
            sinks.write(rec);
        if (!rec.correct) {
            std::cout << sweep[i] << ": FUNCTIONAL MISMATCH\n";
            all_correct = false;
            continue;
        }
        if (!quiet)
            printPoint(sweep[i], rec.cycles, breakdowns[i]);
    }
    return {all_correct, ms};
}

bool
idleLatencySweep(std::size_t workers, MultiSink &sinks)
{
    std::cout << "\n== idle DRAM latency vs DRAM clock "
                 "(pointer chase, Table-I style) ==\n";
    std::cout << std::setw(6) << "ratio" << std::setw(16)
              << "cycles/access" << "\n";

    std::vector<ExperimentSpec> specs;
    for (const std::string &ratio : kDramSweep)
        specs.push_back(chaseSpec({"dramClock=" + ratio}, 256));
    const auto outcomes = ParallelRunner(workers).run(specs);

    bool ok = true;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (outcomes[i].failed || !outcomes[i].record.correct) {
            std::cout << kDramSweep[i] << ": FAILED\n";
            ok = false;
            continue;
        }
        sinks.write(outcomes[i].record);
        std::cout << std::setw(6) << kDramSweep[i] << std::setw(16)
                  << std::fixed << std::setprecision(1)
                  << outcomes[i].record.metric(
                         "pchase_cycles_per_access")
                  << "\n";
    }
    return ok;
}

/** One fast-forward mode's measured effect on the DRAM chase. */
struct ModeSample
{
    std::string mode;
    double wallMs = 0.0;
    std::uint64_t steps = 0;
    std::uint64_t skippedCycles = 0;
    Cycle cycles = 0;

    struct DomainShare
    {
        std::string name;
        std::uint64_t ticksRun = 0;
        std::uint64_t ticksSkipped = 0;

        double
        skipPct() const
        {
            const std::uint64_t total = ticksRun + ticksSkipped;
            return total ? 100.0 * static_cast<double>(ticksSkipped) /
                    static_cast<double>(total)
                         : 0.0;
        }
    };
    std::vector<DomainShare> domains;
};

/**
 * The perf-trajectory artifact: wall-clock and per-domain
 * skipped-tick ratios per fast-forward mode, uploaded by CI's
 * Release job so fast-forward regressions are visible PR-over-PR.
 */
void
writeFastForwardArtifact(const std::string &path,
                         const std::vector<ModeSample> &samples)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write '", path, "'");
    os << "{\n  \"schema\": \"gpulat.bench_fastforward.v1\",\n"
       << "  \"bench\": \"clock_domain_ablation\",\n"
       << "  \"workload\": "
       << jsonQuote("pchase footprintBytes=4194304 strideBytes=512 "
                    "timedAccesses=2048 (gf106, 4 SMs / 2 parts)")
       << ",\n  \"modes\": [\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const ModeSample &s = samples[i];
        os << "    {\"mode\": " << jsonQuote(s.mode)
           << ", \"wall_ms\": " << std::fixed << std::setprecision(2)
           << s.wallMs << ", \"steps\": " << s.steps
           << ", \"skipped_cycles\": " << s.skippedCycles
           << ", \"cycles\": " << s.cycles << ",\n"
           << "     \"domains\": [";
        for (std::size_t d = 0; d < s.domains.size(); ++d) {
            const auto &dom = s.domains[d];
            os << (d ? ", " : "") << "{\"name\": "
               << jsonQuote(dom.name)
               << ", \"ticks_run\": " << dom.ticksRun
               << ", \"ticks_skipped\": " << dom.ticksSkipped
               << ", \"skip_pct\": " << std::setprecision(2)
               << dom.skipPct() << "}";
        }
        os << "]}" << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"speedup\": {";
    auto wall = [&](const char *mode) {
        for (const ModeSample &s : samples)
            if (s.mode == mode)
                return s.wallMs;
        return 0.0;
    };
    const double off_ms = wall("off");
    const double full_ms = wall("full");
    const double per_ms = wall("perDomain");
    os << "\"full_vs_off\": " << std::setprecision(2)
       << (full_ms > 0 ? off_ms / full_ms : 0.0)
       << ", \"perDomain_vs_off\": "
       << (per_ms > 0 ? off_ms / per_ms : 0.0)
       << ", \"perDomain_vs_full\": "
       << (per_ms > 0 ? full_ms / per_ms : 0.0) << "}\n}\n";
    std::cout << "wrote " << path << "\n";
}

bool
fastForwardEffect(const std::string &ff_json_path)
{
    std::cout << "\n== idle fast-forward on a latency-bound "
                 "microbench (single-warp DRAM chase) ==\n";
    std::cout << std::setw(12) << "mode" << std::setw(12) << "wall ms"
              << std::setw(14) << "loop steps" << std::setw(14)
              << "skipped cyc" << std::setw(12) << "cycles"
              << "   per-domain skip % (core/icnt/l2/dram)\n";

    std::vector<ModeSample> samples;
    for (const char *mode : {"off", "full", "perDomain"}) {
        const ExperimentSpec spec = chaseSpec(
            {std::string("idleFastForward=") + mode}, 2048);
        ModeSample sample;
        sample.mode = mode;
        const auto t0 = std::chrono::steady_clock::now();
        const auto outcomes = ParallelRunner(1).run(
            {spec},
            [&](std::size_t, Gpu &gpu, const ExperimentRecord &) {
                sample.steps = gpu.engine().steps();
                sample.skippedCycles = gpu.engine().skippedCycles();
                sample.cycles = gpu.now();
                for (const auto &d : gpu.engine().domains()) {
                    sample.domains.push_back(
                        {d->name(), d->componentTicksRun(),
                         d->componentTicksSkipped()});
                }
            });
        sample.wallMs = wallMs(t0);
        if (outcomes[0].failed || !outcomes[0].record.correct) {
            std::cout << "chase FAILED under idleFastForward="
                      << mode << "\n";
            return false;
        }
        std::cout << std::setw(12) << mode << std::setw(12)
                  << std::fixed << std::setprecision(1)
                  << sample.wallMs << std::setw(14) << sample.steps
                  << std::setw(14) << sample.skippedCycles
                  << std::setw(12) << sample.cycles << "   ";
        for (std::size_t d = 0; d < sample.domains.size(); ++d)
            std::cout << (d ? "/" : "") << std::setprecision(1)
                      << sample.domains[d].skipPct();
        std::cout << "\n";
        samples.push_back(std::move(sample));
    }

    bool ok = true;
    for (const ModeSample &s : samples)
        ok &= s.cycles == samples.front().cycles;
    std::cout << (ok ? "simulated cycles identical: OK\n"
                     : "simulated cycles DIFFER: BUG\n");
    if (!ff_json_path.empty())
        writeFastForwardArtifact(ff_json_path, samples);
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    // Pull out `--ff-json FILE` (the perf-trajectory artifact path)
    // before handing the standard --json/--csv/--jobs set over.
    std::string ff_json;
    std::vector<const char *> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--ff-json") {
            if (i + 1 >= argc)
                fatal("'--ff-json' needs a file path");
            ff_json = argv[++i];
            continue;
        }
        rest.push_back(argv[i]);
    }

    MultiSink sinks;
    std::size_t jobs = 0; // default: hardware concurrency
    addOutputSinks(sinks, static_cast<int>(rest.size()), rest.data(),
                   &jobs);
    const std::size_t workers = resolveJobs(jobs);

    std::cout << "Clock-domain ablation on gf106 (4 SMs / 2 "
                 "partitions; core : icnt : L2 : DRAM, default "
                 "1:1:1:1)\n";

    auto [dram_ok, dram_ms] = sweepUnderLoad(
        "DRAM", "dramClock", kDramSweep, workers, sinks, false);
    bool ok = dram_ok;
    ok &= sweepUnderLoad("ICNT", "icntClock", kIcntSweep, workers,
                         sinks, false)
              .first;
    ok &= idleLatencySweep(workers, sinks);
    ok &= fastForwardEffect(ff_json);
    sinks.finish();

    if (workers > 1) {
        // Measured multi-core speedup: the same DRAM sweep, serial.
        const auto [serial_ok, serial_ms] = sweepUnderLoad(
            "DRAM", "dramClock", kDramSweep, 1, sinks, true);
        ok &= serial_ok;
        std::cout << "\nDRAM sweep wall-clock: " << std::fixed
                  << std::setprecision(0) << serial_ms
                  << " ms serial vs " << dram_ms << " ms with "
                  << workers << " jobs (" << std::setprecision(2)
                  << serial_ms / dram_ms << "x)\n";
    }
    return ok ? 0 : 1;
}
