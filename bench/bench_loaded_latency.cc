/**
 * @file
 * Loaded-latency curve (extension): mean global-load latency as the
 * offered load rises. Offered load is controlled by the number of
 * concurrently-streaming blocks; latency rises from its idle value
 * toward the queueing-dominated regime — the static->dynamic
 * latency transition the paper's two halves straddle.
 *
 * Driven through the experiment API: offered load is a comma-listed
 * `n` sweep (n = blocks x 256 threads); the queueing/arbitration
 * shares come from the record's per-stage metrics.
 */

#include <iostream>

#include "api/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace gpulat;

    MultiSink sinks;
    sinks.add(std::make_unique<TextTableSink>(
        std::cout,
        std::vector<std::string>{"requests", "stage_pct.l1toicnt",
                                 "stage_pct.dram_qtosch"}));
    addOutputSinks(sinks, argc, argv);

    // 1..128 blocks of 256 threads.
    ExperimentSpec spec;
    spec.workload = "vecadd";
    spec.params = {"n=256,512,1024,2048,4096,8192,16384,32768",
                   "threadsPerBlock=256"};

    bool all_correct = true;
    for (const ExperimentSpec &point : expandSweep(spec)) {
        const ExperimentRecord rec = runExperiment(point);
        all_correct = all_correct && rec.correct;
        sinks.write(rec);
    }

    std::cout << "Loaded latency: streaming load latency vs offered "
                 "load (GF100-sim)\n\n";
    sinks.finish();
    std::cout << "\nexpected shape: latency starts near the idle "
                 "DRAM value and grows as queueing/arbitration "
                 "components inflate under load.\n";
    return all_correct ? 0 : 1;
}
