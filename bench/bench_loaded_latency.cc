/**
 * @file
 * Loaded-latency curve (extension): mean global-load latency as the
 * offered load rises. Offered load is controlled by the number of
 * concurrently-streaming blocks; latency rises from its idle value
 * toward the queueing-dominated regime — the static->dynamic
 * latency transition the paper's two halves straddle.
 */

#include <iostream>

#include "common/table.hh"
#include "gpu/gpu.hh"
#include "latency/breakdown.hh"
#include "workloads/vecadd.hh"

int
main()
{
    using namespace gpulat;

    TextTable table({"blocks", "threads", "mean load lat",
                     "p.. L1toICNT %", "DRAM QtoSch %", "cycles"});

    for (unsigned blocks : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        GpuConfig cfg = makeGF100Sim();
        Gpu gpu(cfg);

        VecAdd::Options opts;
        opts.n = static_cast<std::uint64_t>(blocks) * 256;
        opts.threadsPerBlock = 256;
        VecAdd workload(opts);
        const WorkloadResult result = workload.run(gpu);

        const Breakdown bd =
            computeBreakdown(gpu.latencies().traces(), 48);
        double sum = 0.0;
        for (const auto &t : gpu.latencies().traces())
            sum += static_cast<double>(t.total());
        const double mean = gpu.latencies().count()
            ? sum / static_cast<double>(gpu.latencies().count())
            : 0.0;

        std::uint64_t total = 0;
        for (auto v : bd.totalByStage)
            total += v;
        auto pct = [&](Stage s) {
            return total == 0
                ? 0.0
                : 100.0 *
                  static_cast<double>(bd.totalByStage[
                      static_cast<std::size_t>(s)]) /
                  static_cast<double>(total);
        };

        table.addRow({std::to_string(blocks),
                      std::to_string(blocks * 256),
                      formatDouble(mean, 1),
                      formatDouble(pct(Stage::L1ToIcnt), 1),
                      formatDouble(pct(Stage::DramQToSched), 1),
                      std::to_string(result.cycles)});
    }

    std::cout << "Loaded latency: streaming load latency vs offered "
                 "load (GF100-sim)\n\n";
    table.print(std::cout);
    std::cout << "\nexpected shape: latency starts near the idle "
                 "DRAM value and grows as queueing/arbitration "
                 "components inflate under load.\n";
    return 0;
}
