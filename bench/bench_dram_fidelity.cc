/**
 * @file
 * DRAM-fidelity bench: the memory-model ablation grid behind the
 * `BENCH_dram.json` perf artifact CI uploads.
 *
 * Two sections. (1) A pchase footprint ladder run under both DRAM
 * models — the paper-style divergent-latency curve, showing where
 * the ddr command constraints start to separate from the calibrated
 * simple model. (2) A loaded-latency ablation grid — streaming
 * vecadd under the ddr model swept over address map x MSHR banking
 * — plus the simple baseline.
 *
 * Full mode gates (exit nonzero on violation):
 *  - every run verifies (rec.correct);
 *  - the ddr model demonstrably moves the breakdown on the loaded
 *    workload: refresh-stall cycles > 0 and row-conflict share > 0;
 *  - at least one (map, mshr.banks) pair splits mean load latency
 *    from another pair.
 *
 * `--quick` shrinks to three points with engine.tickJobs=4 for the
 * TSan lane (worker-parallel ticking across the ddr bank FSM).
 */

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "api/experiment.hh"
#include "common/log.hh"

using namespace gpulat;

namespace {

struct Point
{
    std::string section;  ///< "ladder" or "grid"
    std::string workload;
    std::uint64_t size = 0; ///< footprintBytes or n
    std::string model;
    std::string map;
    unsigned mshrBanks = 1;
    ExperimentRecord rec;
    double wallMs = 0.0;
};

double
metric(const ExperimentRecord &rec, const std::string &key)
{
    const auto it = rec.metrics.find(key);
    return it == rec.metrics.end() ? 0.0 : it->second;
}

Point
runPoint(std::string section, std::string workload,
         const std::string &size_param, std::uint64_t size,
         std::string model, std::string map, unsigned mshr_banks,
         bool quick)
{
    ExperimentSpec spec;
    spec.workload = workload;
    spec.params = {size_param + "=" + std::to_string(size)};
    spec.overrides = {"mem.dram.model=" + model,
                      "mem.dram.map=" + map,
                      "mem.mshr.banks=" + std::to_string(mshr_banks)};
    if (quick)
        spec.overrides.push_back("engine.tickJobs=4");

    const auto t0 = std::chrono::steady_clock::now();
    Point p;
    p.section = std::move(section);
    p.workload = std::move(workload);
    p.size = size;
    p.model = std::move(model);
    p.map = std::move(map);
    p.mshrBanks = mshr_banks;
    p.rec = runExperiment(spec);
    p.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    return p;
}

void
printPoint(const Point &p)
{
    std::cout << std::left << std::setw(8) << p.section
              << std::setw(9) << p.workload << std::right
              << std::setw(9) << p.size << std::setw(8) << p.model
              << std::setw(5) << p.map << std::setw(6)
              << p.mshrBanks << std::fixed << std::setprecision(1)
              << std::setw(10) << metric(p.rec, "mean_load_latency")
              << std::setw(8) << metric(p.rec, "dram_row_hit_pct")
              << std::setw(8)
              << metric(p.rec, "dram_row_conflict_pct")
              << std::setprecision(0) << std::setw(9)
              << metric(p.rec, "dram_refresh_stall_cycles")
              << std::setw(9) << metric(p.rec, "mshr_bank_conflicts")
              << std::setw(5) << (p.rec.correct ? "yes" : "NO")
              << "\n";
}

void
writeArtifact(const std::string &path,
              const std::vector<Point> &points, bool gates_ok)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write '", path, "'");
    os << "{\n  \"schema\": \"gpulat.bench_dram.v1\",\n"
       << "  \"bench\": \"dram_fidelity\",\n"
       << "  \"gates_ok\": " << (gates_ok ? "true" : "false")
       << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        os << "    {\"section\": \"" << p.section
           << "\", \"workload\": \"" << p.workload
           << "\", \"size\": " << p.size << ", \"model\": \""
           << p.model << "\", \"map\": \"" << p.map
           << "\", \"mshr_banks\": " << p.mshrBanks
           << ", \"correct\": " << (p.rec.correct ? "true" : "false")
           << ", \"cycles\": " << p.rec.cycles << std::fixed
           << std::setprecision(2) << ", \"mean_load_latency\": "
           << metric(p.rec, "mean_load_latency")
           << ", \"dram_row_hit_pct\": "
           << metric(p.rec, "dram_row_hit_pct")
           << ", \"dram_rd_row_hit_pct\": "
           << metric(p.rec, "dram_rd_row_hit_pct")
           << ", \"dram_wr_row_hit_pct\": "
           << metric(p.rec, "dram_wr_row_hit_pct")
           << ", \"dram_row_conflict_pct\": "
           << metric(p.rec, "dram_row_conflict_pct")
           << ", \"dram_refresh_stall_cycles\": "
           << metric(p.rec, "dram_refresh_stall_cycles")
           << ", \"mshr_bank_conflicts\": "
           << metric(p.rec, "mshr_bank_conflicts")
           << ", \"mean_dram_queue_wait\": "
           << metric(p.rec, "mean_dram_queue_wait")
           << ", \"wall_ms\": " << p.wallMs << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string artifact;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dram-json") {
            if (i + 1 >= argc)
                fatal("'--dram-json' needs a file path");
            artifact = argv[++i];
        } else if (arg == "--quick") {
            quick = true;
        } else {
            fatal("unknown option '", arg,
                  "' (expected --dram-json FILE or --quick)");
        }
    }

    std::cout << "DRAM fidelity: model x map x mshr.banks\n\n"
              << std::left << std::setw(8) << "section"
              << std::setw(9) << "workload" << std::right
              << std::setw(9) << "size" << std::setw(8) << "model"
              << std::setw(5) << "map" << std::setw(6) << "banks"
              << std::setw(10) << "latency" << std::setw(8) << "hit%"
              << std::setw(8) << "conf%" << std::setw(9) << "refstl"
              << std::setw(9) << "mshrcf" << std::setw(5) << "ok"
              << "\n";

    std::vector<Point> points;
    bool all_correct = true;
    auto add = [&](Point p) {
        all_correct &= p.rec.correct;
        printPoint(p);
        points.push_back(std::move(p));
    };

    // Section 1: pchase footprint ladder, simple vs ddr.
    const std::vector<std::uint64_t> ladder =
        quick ? std::vector<std::uint64_t>{2u << 20}
              : std::vector<std::uint64_t>{256u << 10, 2u << 20,
                                           8u << 20};
    for (const std::uint64_t footprint : ladder) {
        for (const char *model : {"simple", "ddr"}) {
            add(runPoint("ladder", "pchase", "footprintBytes",
                         footprint, model, "row", 1, quick));
            if (quick)
                break; // one model is enough for the TSan lane
        }
    }
    std::cout << "\n";

    // Section 2: loaded-latency ablation grid on streaming vecadd.
    const std::uint64_t n = quick ? 16384 : 65536;
    add(runPoint("grid", "vecadd", "n", n, "simple", "row", 1,
                 quick));
    const std::vector<const char *> maps =
        quick ? std::vector<const char *>{"bg"}
              : std::vector<const char *>{"row", "bg", "xor"};
    const std::vector<unsigned> banks =
        quick ? std::vector<unsigned>{8}
              : std::vector<unsigned>{1, 8};
    std::set<double> grid_latencies;
    std::size_t loaded_ddr = 0; // index: push_back invalidates refs
    for (const char *map : maps) {
        for (const unsigned b : banks) {
            add(runPoint("grid", "vecadd", "n", n, "ddr", map, b,
                         quick));
            grid_latencies.insert(
                metric(points.back().rec, "mean_load_latency"));
            if (!loaded_ddr)
                loaded_ddr = points.size() - 1;
        }
    }

    // Gates (full mode): the ddr model must visibly move the
    // breakdown, and the ablation grid must actually split.
    bool gates_ok = true;
    if (!quick) {
        const Point &ddr_pt = points[loaded_ddr];
        if (metric(ddr_pt.rec, "dram_refresh_stall_cycles") <=
            0.0) {
            std::cout << "FAIL: ddr loaded run shows no refresh "
                         "stalls\n";
            gates_ok = false;
        }
        if (metric(ddr_pt.rec, "dram_row_conflict_pct") <= 0.0) {
            std::cout << "FAIL: ddr loaded run shows no bank "
                         "conflicts\n";
            gates_ok = false;
        }
        if (grid_latencies.size() < 2) {
            std::cout << "FAIL: no (map, mshr.banks) pair splits "
                         "mean load latency\n";
            gates_ok = false;
        }
    }

    if (!artifact.empty())
        writeArtifact(artifact, points, gates_ok);
    return all_correct && gates_ok ? 0 : 1;
}
