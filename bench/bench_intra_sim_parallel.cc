/**
 * @file
 * Intra-simulation parallel-ticking bench: one multi-partition
 * memory-bound simulation, executed with `engine.tickJobs = 1`
 * (the serial reference) and with a worker pool ticking the
 * per-partition groups concurrently. Verifies that cycles, traces
 * and counters are byte-identical across worker counts (rendering
 * both records through the JSON sink), prints the wall-clock per
 * point, and writes the `BENCH_intrasim.json` perf artifact CI
 * uploads so intra-sim scaling is visible PR-over-PR.
 *
 * The workload shape is chosen so partition work dominates: few
 * SMs (the SM group is one ordered batch), many memory partitions,
 * a deep FR-FCFS DRAM queue to scan per scheduling decision, and a
 * streaming footprint far beyond the L2 so every partition's DRAM
 * side stays busy. On a single-core host the parallel point
 * reports its honest (≈1x or below) ratio — the speedup column is
 * a measurement, the determinism check is the gate.
 */

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/experiment.hh"
#include "api/parallel_runner.hh"
#include "common/log.hh"
#include "engine/tick_engine.hh"

using namespace gpulat;

namespace {

/** One measured execution point: a tick-jobs value and its cost. */
struct Point
{
    std::size_t tickJobsRequested = 1;
    std::size_t tickJobsResolved = 1;
    double wallMs = 0.0;
    Cycle cycles = 0;
    bool correct = false;
    ExperimentRecord rec;
    std::string json; ///< full record render (determinism check)
    std::vector<std::pair<std::string, std::uint64_t>> groupTicks;
};

/**
 * Memory-bound multi-partition cell: 2 SMs full of warps streaming
 * a 16 MiB footprint through 8 partitions with 64-deep FR-FCFS
 * DRAM queues — per-cycle partition work (queue scans, bank
 * timing, L2 lookups) far outweighs the serial SM/port slice.
 */
ExperimentSpec
memoryBoundSpec(std::size_t tick_jobs)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "vecadd";
    spec.params = {"n=" + std::to_string(1 << 18)};
    spec.overrides = {
        "numSms=2",
        "numPartitions=8",
        "sm.warpSlots=48",
        "partition.dramQueueSize=64",
        "deviceMemBytes=" + std::to_string(64 * 1024 * 1024),
        "engine.tickJobs=" + std::to_string(tick_jobs),
    };
    return spec;
}

Point
runPoint(std::size_t tick_jobs)
{
    Point point;
    point.tickJobsRequested = tick_jobs;

    const auto t0 = std::chrono::steady_clock::now();
    const ExperimentRecord rec = runExperiment(
        memoryBoundSpec(tick_jobs),
        [&](Gpu &gpu, const ExperimentRecord &) {
            const TickEngine &engine = gpu.engine();
            for (unsigned g = 0; g < engine.numGroups(); ++g) {
                point.groupTicks.emplace_back(
                    engine.groupName(g), engine.groupTicksRun(g));
            }
        });
    using ms = std::chrono::duration<double, std::milli>;
    point.wallMs =
        ms(std::chrono::steady_clock::now() - t0).count();

    point.tickJobsResolved = rec.tickJobs;
    point.cycles = rec.cycles;
    point.correct = rec.correct;

    std::ostringstream os;
    JsonSink sink(os);
    sink.write(rec);
    sink.finish();
    point.json = os.str();
    point.rec = rec;
    return point;
}

void
writeArtifact(const std::string &path,
              const std::vector<Point> &points, bool identical)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write '", path, "'");
    os << "{\n  \"schema\": \"gpulat.bench_intrasim.v1\",\n"
       << "  \"bench\": \"intra_sim_parallel\",\n"
       << "  \"workload\": "
       << jsonQuote("vecadd n=262144 (gf106, 2 SMs / 8 partitions, "
                    "48 warps/SM, dramQueueSize=64)")
       << ",\n  \"hardware_concurrency\": "
       << TickEngine::resolveTickJobs(0)
       << ",\n  \"records_byte_identical\": "
       << (identical ? "true" : "false") << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        os << "    {\"tick_jobs\": " << p.tickJobsRequested
           << ", \"tick_jobs_resolved\": " << p.tickJobsResolved
           << ", \"wall_ms\": " << std::fixed << std::setprecision(2)
           << p.wallMs << ", \"cycles\": " << p.cycles
           << ", \"correct\": " << (p.correct ? "true" : "false")
           << ", \"groups\": [";
        for (std::size_t g = 0; g < p.groupTicks.size(); ++g) {
            os << (g ? ", " : "") << "{\"name\": "
               << jsonQuote(p.groupTicks[g].first)
               << ", \"ticks_run\": " << p.groupTicks[g].second
               << "}";
        }
        os << "]}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    const double serial_ms = points.front().wallMs;
    const double par_ms = points.back().wallMs;
    os << "  ],\n  \"speedup\": {\"parallel_vs_serial\": "
       << std::setprecision(2)
       << (par_ms > 0.0 ? serial_ms / par_ms : 0.0) << "}\n}\n";
    std::cout << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // Pull out `--intrasim-json FILE` before handing the standard
    // --json/--csv/--jobs set over.
    std::string artifact;
    std::vector<const char *> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--intrasim-json") {
            if (i + 1 >= argc)
                fatal("'--intrasim-json' needs a file path");
            artifact = argv[++i];
            continue;
        }
        rest.push_back(argv[i]);
    }
    MultiSink sinks;
    std::size_t jobs = 0; // unused: one cell at a time by design
    addOutputSinks(sinks, static_cast<int>(rest.size()), rest.data(),
                   &jobs);

    const std::size_t hw = TickEngine::resolveTickJobs(0);
    // Measure serial first, then the parallel ladder up to the
    // hardware concurrency (always including 4, the CI TSan/
    // determinism point, even on smaller machines).
    std::vector<std::size_t> ladder{1};
    if (hw >= 2 && hw != 4)
        ladder.push_back(std::min<std::size_t>(hw, 8));
    ladder.push_back(4);

    std::cout << "Intra-simulation parallel ticking "
                 "(memory-bound vecadd, 8 partitions; "
              << hw << " hardware threads)\n";
    std::cout << std::setw(10) << "tickJobs" << std::setw(12)
              << "wall ms" << std::setw(12) << "cycles"
              << std::setw(10) << "speedup" << "\n";

    std::vector<Point> points;
    bool ok = true;
    for (const std::size_t tick_jobs : ladder) {
        points.push_back(runPoint(tick_jobs));
        const Point &p = points.back();
        ok &= p.correct;
        std::cout << std::setw(10) << tick_jobs << std::setw(12)
                  << std::fixed << std::setprecision(1) << p.wallMs
                  << std::setw(12) << p.cycles << std::setw(9)
                  << std::setprecision(2)
                  << (p.wallMs > 0.0
                          ? points.front().wallMs / p.wallMs
                          : 0.0)
                  << "x\n";
        if (!p.correct)
            std::cout << "FUNCTIONAL MISMATCH at tickJobs="
                      << tick_jobs << "\n";
    }

    // The gate: every point's full record — cycles, traces-derived
    // metrics, every counter — must render byte-identically.
    bool identical = true;
    for (const Point &p : points)
        identical &= p.json == points.front().json;
    std::cout << (identical
                      ? "records byte-identical across tickJobs: OK\n"
                      : "records DIFFER across tickJobs: BUG\n");
    ok &= identical;

    for (const Point &p : points)
        sinks.write(p.rec);
    sinks.finish();

    if (!artifact.empty())
        writeArtifact(artifact, points, identical);
    return ok ? 0 : 1;
}
