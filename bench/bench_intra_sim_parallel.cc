/**
 * @file
 * Intra-simulation parallel-ticking bench: three ladders over
 * `engine.tickJobs` — memory-bound (partition groups dominate),
 * compute-bound (per-SM groups dominate) and a loop kernel (gemm,
 * SM-parallel only because the loop-aware footprint analysis
 * proves its tiled stores cross-block disjoint). Each ladder
 * verifies that cycles, traces and counters are byte-identical
 * across worker counts (rendering records through the JSON sink),
 * prints the wall-clock and serial-vs-parallel speedup per point,
 * and writes the `BENCH_intrasim.json` perf artifact
 * (`gpulat.bench_intrasim.v3`: per-point safety verdicts ride
 * along) CI uploads so intra-sim scaling is visible PR-over-PR.
 *
 * Ladder shapes:
 *  - memory-bound: few SMs, 8 partitions, deep FR-FCFS DRAM queues,
 *    streaming footprint far beyond the L2 — per-cycle partition
 *    work (queue scans, bank timing, L2 lookups) far outweighs the
 *    SM slice.
 *  - compute-bound: 8 SMs at full warp occupancy grinding long
 *    dependent FFMA chains, 2 partitions — the per-SM tick groups
 *    carry nearly all the work, exercising the SM sharding and the
 *    work-stealing pool rather than the partition path.
 *  - loop kernel: gemm's inner-product loop, 8 SMs / 2 partitions
 *    — a backward branch used to force serialization outright;
 *    its speedup exists exactly because the abstract interpreter
 *    now proves the footprint block-disjoint.
 *
 * On a single-core host the parallel points report their honest
 * (≈1x or below) ratios — the speedup columns are measurements,
 * the determinism checks are the gate.
 */

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/experiment.hh"
#include "api/parallel_runner.hh"
#include "common/log.hh"
#include "engine/tick_engine.hh"

using namespace gpulat;

namespace {

/** One measured execution point: a tick-jobs value and its cost. */
struct Point
{
    std::size_t tickJobsRequested = 1;
    std::size_t tickJobsResolved = 1;
    double wallMs = 0.0;
    Cycle cycles = 0;
    bool correct = false;
    bool smParallel = false;  ///< launch safety verdict
    std::string verdictReason;
    ExperimentRecord rec;
    std::string json; ///< full record render (determinism check)
    std::vector<std::pair<std::string, std::uint64_t>> groupTicks;
};

/** One tick-jobs ladder over a fixed workload shape. */
struct Ladder
{
    std::string key;         ///< artifact object key
    std::string title;       ///< table heading
    std::string description; ///< artifact workload string
    std::vector<Point> points;
    bool identical = true;
};

/**
 * Memory-bound multi-partition cell: 2 SMs full of warps streaming
 * a 16 MiB footprint through 8 partitions with 64-deep FR-FCFS
 * DRAM queues — per-cycle partition work far outweighs the SM
 * slice.
 */
ExperimentSpec
memoryBoundSpec(std::size_t tick_jobs)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "vecadd";
    spec.params = {"n=" + std::to_string(1 << 18)};
    spec.overrides = {
        "numSms=2",
        "numPartitions=8",
        "sm.warpSlots=48",
        "partition.dramQueueSize=64",
        "deviceMemBytes=" + std::to_string(64 * 1024 * 1024),
        "engine.tickJobs=" + std::to_string(tick_jobs),
    };
    return spec;
}

/**
 * Compute-bound many-SM cell: 8 SMs at 48 warps each grinding
 * dependent 192-deep FFMA chains, only 2 partitions — nearly all
 * per-cycle work lives in the per-SM tick groups (compute_stream's
 * kernel is loop-free and affine, so the launch safety analysis
 * lets the SMs tick concurrently).
 */
ExperimentSpec
computeBoundSpec(std::size_t tick_jobs)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "compute_stream";
    spec.params = {"n=" + std::to_string(1 << 15), "fmaDepth=192"};
    spec.overrides = {
        "numSms=8",
        "numPartitions=2",
        "sm.warpSlots=48",
        "engine.tickJobs=" + std::to_string(tick_jobs),
    };
    return spec;
}

/**
 * Loop-kernel cell: gemm's tiled inner loop used to defeat the
 * straight-line safety checker and serialize every SM; the
 * loop-aware footprint analysis now proves its stores cross-block
 * disjoint, so this ladder measures the speedup that verdict
 * unlocked (the per-point verdicts in the artifact are the
 * regression gate for it).
 */
ExperimentSpec
loopKernelSpec(std::size_t tick_jobs)
{
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "gemm";
    spec.params = {"n=128"};
    spec.overrides = {
        "numSms=8",
        "numPartitions=2",
        "sm.warpSlots=48",
        "engine.tickJobs=" + std::to_string(tick_jobs),
    };
    return spec;
}

Point
runPoint(const ExperimentSpec &spec, std::size_t tick_jobs)
{
    Point point;
    point.tickJobsRequested = tick_jobs;

    const auto t0 = std::chrono::steady_clock::now();
    const ExperimentRecord rec = runExperiment(
        spec, [&](Gpu &gpu, const ExperimentRecord &) {
            const TickEngine &engine = gpu.engine();
            for (unsigned g = 0; g < engine.numGroups(); ++g) {
                point.groupTicks.emplace_back(
                    engine.groupName(g), engine.groupTicksRun(g));
            }
        });
    using ms = std::chrono::duration<double, std::milli>;
    point.wallMs =
        ms(std::chrono::steady_clock::now() - t0).count();

    point.tickJobsResolved = rec.tickJobs;
    point.cycles = rec.cycles;
    point.correct = rec.correct;
    point.smParallel = rec.metric("analysis.sm_parallel") != 0.0;
    point.verdictReason = rec.analysisReason;

    std::ostringstream os;
    JsonSink sink(os);
    sink.write(rec);
    sink.finish();
    point.json = os.str();
    point.rec = rec;
    return point;
}

/** serial wall / fastest parallel wall (0 when unmeasurable). */
double
bestSpeedup(const std::vector<Point> &points)
{
    const double serial_ms = points.front().wallMs;
    double best_ms = 0.0;
    for (std::size_t i = 1; i < points.size(); ++i)
        if (best_ms == 0.0 || points[i].wallMs < best_ms)
            best_ms = points[i].wallMs;
    return best_ms > 0.0 ? serial_ms / best_ms : 0.0;
}

Ladder
runLadder(std::string key, std::string title, std::string desc,
          ExperimentSpec (*spec)(std::size_t),
          const std::vector<std::size_t> &jobs_ladder)
{
    Ladder ladder;
    ladder.key = std::move(key);
    ladder.title = std::move(title);
    ladder.description = std::move(desc);

    std::cout << "\n" << ladder.title << "\n";
    std::cout << std::setw(10) << "tickJobs" << std::setw(12)
              << "wall ms" << std::setw(12) << "cycles"
              << std::setw(10) << "speedup" << "\n";
    for (const std::size_t tick_jobs : jobs_ladder) {
        ladder.points.push_back(runPoint(spec(tick_jobs), tick_jobs));
        const Point &p = ladder.points.back();
        std::cout << std::setw(10) << tick_jobs << std::setw(12)
                  << std::fixed << std::setprecision(1) << p.wallMs
                  << std::setw(12) << p.cycles << std::setw(9)
                  << std::setprecision(2)
                  << (p.wallMs > 0.0
                          ? ladder.points.front().wallMs / p.wallMs
                          : 0.0)
                  << "x\n";
        if (!p.correct)
            std::cout << "FUNCTIONAL MISMATCH at tickJobs="
                      << tick_jobs << "\n";
        ladder.identical &=
            p.json == ladder.points.front().json;
    }
    std::cout << (ladder.identical
                      ? "records byte-identical across tickJobs: OK\n"
                      : "records DIFFER across tickJobs: BUG\n");
    const Point &head = ladder.points.front();
    std::cout << "verdict: "
              << (head.smParallel ? "sm-parallel" : "serialized")
              << " — " << head.verdictReason << "\n";
    return ladder;
}

void
writeArtifact(const std::string &path,
              const std::vector<Ladder> &ladders)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write '", path, "'");
    bool all_identical = true;
    for (const Ladder &ladder : ladders)
        all_identical &= ladder.identical;
    os << "{\n  \"schema\": \"gpulat.bench_intrasim.v3\",\n"
       << "  \"bench\": \"intra_sim_parallel\",\n"
       << "  \"hardware_concurrency\": "
       << TickEngine::resolveTickJobs(0)
       << ",\n  \"records_byte_identical\": "
       << (all_identical ? "true" : "false")
       << ",\n  \"ladders\": {\n";
    for (std::size_t l = 0; l < ladders.size(); ++l) {
        const Ladder &ladder = ladders[l];
        os << "    " << jsonQuote(ladder.key) << ": {\n"
           << "      \"workload\": " << jsonQuote(ladder.description)
           << ",\n      \"records_byte_identical\": "
           << (ladder.identical ? "true" : "false")
           << ",\n      \"points\": [\n";
        for (std::size_t i = 0; i < ladder.points.size(); ++i) {
            const Point &p = ladder.points[i];
            os << "        {\"tick_jobs\": " << p.tickJobsRequested
               << ", \"tick_jobs_resolved\": " << p.tickJobsResolved
               << ", \"wall_ms\": " << std::fixed
               << std::setprecision(2) << p.wallMs
               << ", \"cycles\": " << p.cycles << ", \"correct\": "
               << (p.correct ? "true" : "false")
               << ", \"sm_parallel\": "
               << (p.smParallel ? "true" : "false")
               << ", \"verdict_reason\": "
               << jsonQuote(p.verdictReason)
               << ", \"groups\": [";
            for (std::size_t g = 0; g < p.groupTicks.size(); ++g) {
                os << (g ? ", " : "") << "{\"name\": "
                   << jsonQuote(p.groupTicks[g].first)
                   << ", \"ticks_run\": " << p.groupTicks[g].second
                   << "}";
            }
            os << "]}"
               << (i + 1 < ladder.points.size() ? "," : "") << "\n";
        }
        os << "      ],\n      \"speedup\": "
           << "{\"parallel_vs_serial\": " << std::setprecision(2)
           << bestSpeedup(ladder.points) << "}\n    }"
           << (l + 1 < ladders.size() ? "," : "") << "\n";
    }
    os << "  }\n}\n";
    std::cout << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    // Pull out `--intrasim-json FILE` before handing the standard
    // --json/--csv/--jobs set over.
    std::string artifact;
    std::vector<const char *> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--intrasim-json") {
            if (i + 1 >= argc)
                fatal("'--intrasim-json' needs a file path");
            artifact = argv[++i];
            continue;
        }
        rest.push_back(argv[i]);
    }
    MultiSink sinks;
    std::size_t jobs = 0; // unused: one cell at a time by design
    addOutputSinks(sinks, static_cast<int>(rest.size()), rest.data(),
                   &jobs);

    const std::size_t hw = TickEngine::resolveTickJobs(0);
    // Measure serial first, then the parallel ladder up to the
    // hardware concurrency (always including 4, the CI TSan/
    // determinism point, even on smaller machines).
    std::vector<std::size_t> ladder{1};
    if (hw >= 2 && hw != 4)
        ladder.push_back(std::min<std::size_t>(hw, 8));
    ladder.push_back(4);

    std::cout << "Intra-simulation parallel ticking (" << hw
              << " hardware threads)\n";

    std::vector<Ladder> ladders;
    ladders.push_back(runLadder(
        "memory_bound",
        "memory-bound: vecadd, 2 SMs / 8 partitions",
        "vecadd n=262144 (gf106, 2 SMs / 8 partitions, "
        "48 warps/SM, dramQueueSize=64)",
        memoryBoundSpec, ladder));
    ladders.push_back(runLadder(
        "compute_bound",
        "compute-bound: compute_stream, 8 SMs / 2 partitions",
        "compute_stream n=32768 fmaDepth=192 (gf106, 8 SMs / "
        "2 partitions, 48 warps/SM)",
        computeBoundSpec, ladder));
    ladders.push_back(runLadder(
        "loop_kernel",
        "loop kernel: gemm, 8 SMs / 2 partitions",
        "gemm n=128 (gf106, 8 SMs / 2 partitions, 48 warps/SM; "
        "SM-parallel via the loop-aware footprint analysis)",
        loopKernelSpec, ladder));

    bool ok = true;
    for (const Ladder &l : ladders) {
        ok &= l.identical;
        for (const Point &p : l.points) {
            ok &= p.correct;
            sinks.write(p.rec);
        }
    }
    sinks.finish();

    if (!artifact.empty())
        writeArtifact(artifact, ladders);
    return ok ? 0 : 1;
}
