/**
 * @file
 * Ablation for the paper's suggestion that "request latency could
 * potentially be reduced through usage of a different DRAM
 * scheduling algorithm": runs the workloads under FCFS vs FR-FCFS
 * and reports mean load latency, DRAM queue wait and row-hit rate.
 */

#include <iostream>

#include "common/table.hh"
#include "gpu/gpu.hh"
#include "latency/breakdown.hh"
#include "workloads/workload.hh"

namespace {

struct Row
{
    std::string workload;
    std::string sched;
    double meanLatency;
    double meanDramWait;
    double rowHitRate;
    gpulat::Cycle cycles;
};

Row
runOne(gpulat::Workload &workload, gpulat::DramSchedPolicy policy)
{
    using namespace gpulat;
    GpuConfig cfg = makeGF100Sim();
    cfg.partition.sched = policy;
    Gpu gpu(cfg);
    const WorkloadResult result = workload.run(gpu);

    double sum = 0.0;
    for (const auto &t : gpu.latencies().traces())
        sum += static_cast<double>(t.total());
    const double mean = gpu.latencies().count()
        ? sum / static_cast<double>(gpu.latencies().count())
        : 0.0;

    double wait_sum = 0.0;
    std::uint64_t wait_n = 0;
    std::uint64_t hits = 0;
    std::uint64_t total_dram = 0;
    for (unsigned p = 0; p < cfg.numPartitions; ++p) {
        const std::string prefix = "part" + std::to_string(p);
        const auto &wait = gpu.stats().scalar(prefix +
                                              ".dram_queue_wait");
        wait_sum += wait.sum();
        wait_n += wait.count();
        hits += gpu.stats().counterValue(prefix + ".dram.row_hits");
        total_dram +=
            gpu.stats().counterValue(prefix + ".dram.row_hits") +
            gpu.stats().counterValue(prefix + ".dram.row_misses") +
            gpu.stats().counterValue(prefix + ".dram.row_closed");
    }

    Row row;
    row.workload = workload.name();
    row.sched = toString(policy);
    row.meanLatency = mean;
    row.meanDramWait =
        wait_n ? wait_sum / static_cast<double>(wait_n) : 0.0;
    row.rowHitRate = total_dram
        ? 100.0 * static_cast<double>(hits) /
              static_cast<double>(total_dram)
        : 0.0;
    row.cycles = result.cycles;
    if (!result.correct)
        row.workload += " (FAILED)";
    return row;
}

} // namespace

int
main()
{
    using namespace gpulat;

    TextTable table({"workload", "dram sched", "mean load lat",
                     "mean dram wait", "row hit %", "cycles"});

    for (auto policy :
         {DramSchedPolicy::FCFS, DramSchedPolicy::FRFCFS}) {
        for (auto &workload : makeAllWorkloads(1.0)) {
            const Row row = runOne(*workload, policy);
            table.addRow({row.workload, row.sched,
                          formatDouble(row.meanLatency, 1),
                          formatDouble(row.meanDramWait, 1),
                          formatDouble(row.rowHitRate, 1),
                          std::to_string(row.cycles)});
        }
    }

    std::cout << "DRAM scheduler ablation (GF100-sim): FCFS vs "
                 "FR-FCFS\n\n";
    table.print(std::cout);
    std::cout << "\nexpected shape: FR-FCFS raises the row-hit rate "
                 "and cuts DRAM queue wait / total runtime on "
                 "bandwidth-heavy workloads.\n";
    return 0;
}
