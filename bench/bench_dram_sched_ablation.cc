/**
 * @file
 * Ablation for the paper's suggestion that "request latency could
 * potentially be reduced through usage of a different DRAM
 * scheduling algorithm": runs the workloads under FCFS vs FR-FCFS
 * and reports mean load latency, DRAM queue wait and row-hit rate.
 *
 * Driven through the experiment API (per-epoch counters via
 * StatRegistry::counterSinceEpoch() inside collectRecord, instead
 * of the old hand-summed raw counter reads); `--json FILE` /
 * `--csv FILE` emit machine-readable records.
 */

#include <iostream>

#include "api/experiment.hh"
#include "api/workload_registry.hh"

int
main(int argc, char **argv)
{
    using namespace gpulat;

    MultiSink sinks;
    sinks.add(std::make_unique<TextTableSink>(
        std::cout,
        std::vector<std::string>{"mean_dram_queue_wait",
                                 "dram_row_hit_pct"}));
    addOutputSinks(sinks, argc, argv);

    bool all_correct = true;
    for (const char *policy : {"fcfs", "frfcfs"}) {
        for (const std::string &name :
             WorkloadRegistry::instance().names()) {
            ExperimentSpec spec;
            spec.workload = name;
            spec.overrides = {std::string("partition.sched=") +
                              policy};
            const ExperimentRecord rec = runExperiment(spec);
            all_correct = all_correct && rec.correct;
            sinks.write(rec);
        }
    }

    std::cout << "DRAM scheduler ablation (GF100-sim): FCFS vs "
                 "FR-FCFS\n\n";
    sinks.finish();
    std::cout << "\nexpected shape: FR-FCFS raises the row-hit rate "
                 "and cuts DRAM queue wait / total runtime on "
                 "bandwidth-heavy workloads.\n";
    return all_correct ? 0 : 1;
}
