/**
 * @file
 * Atomic contention sweep (extension): histogram with bin counts
 * from 2 (two hot L2 lines, fully serialized) to 4096 (spread):
 * runtime and mean atomic latency versus contention.
 *
 * Driven through the experiment API: the whole sweep is one spec
 * with a comma-listed `bins` parameter. Atomic latencies are the
 * traces for DRAM/L2 RMW requests; the input loads are coalesced
 * streams, so atomics dominate mean_load_latency here.
 */

#include <iostream>

#include "api/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace gpulat;

    MultiSink sinks;
    sinks.add(std::make_unique<TextTableSink>(std::cout));
    addOutputSinks(sinks, argc, argv);

    ExperimentSpec spec;
    spec.workload = "histogram";
    spec.params = {"n=16384", "bins=2,8,32,128,512,4096"};

    bool all_correct = true;
    for (const ExperimentSpec &point : expandSweep(spec)) {
        const ExperimentRecord rec = runExperiment(point);
        all_correct = all_correct && rec.correct;
        sinks.write(rec);
    }

    std::cout << "Atomic contention sweep (GF100-sim histogram)\n\n";
    sinks.finish();
    std::cout << "\nexpected shape: fewer bins concentrate RMWs on "
                 "hot L2 lines; latency and runtime fall as bins "
                 "spread.\n";
    return all_correct ? 0 : 1;
}
