/**
 * @file
 * Atomic contention sweep (extension): histogram with bin counts
 * from 2 (two hot L2 lines, fully serialized) to 4096 (spread):
 * runtime and mean atomic latency versus contention.
 */

#include <iostream>

#include "common/table.hh"
#include "gpu/gpu.hh"
#include "workloads/histogram.hh"

int
main()
{
    using namespace gpulat;

    TextTable table({"bins", "cycles", "mean atomic lat",
                     "correct"});

    for (std::uint64_t bins : {2ull, 8ull, 32ull, 128ull, 512ull,
                               4096ull}) {
        GpuConfig cfg = makeGF100Sim();
        Gpu gpu(cfg);
        AtomicHistogram::Options opts;
        opts.n = 1 << 14;
        opts.bins = bins;
        AtomicHistogram workload(opts);
        const WorkloadResult result = workload.run(gpu);

        // Atomic latencies are the traces for DRAM/L2 RMW requests;
        // the input loads are coalesced streams, so atomics dominate
        // the request count here.
        double sum = 0.0;
        for (const auto &t : gpu.latencies().traces())
            sum += static_cast<double>(t.total());
        const double mean = gpu.latencies().count()
            ? sum / static_cast<double>(gpu.latencies().count())
            : 0.0;

        table.addRow({std::to_string(bins),
                      std::to_string(result.cycles),
                      formatDouble(mean, 1),
                      result.correct ? "yes" : "NO"});
    }

    std::cout << "Atomic contention sweep (GF100-sim histogram)\n\n";
    table.print(std::cout);
    std::cout << "\nexpected shape: fewer bins concentrate RMWs on "
                 "hot L2 lines; latency and runtime fall as bins "
                 "spread.\n";
    return 0;
}
