/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot
 * components: cache accesses, coalescing, DRAM scheduling and
 * whole-GPU cycles/second.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/random.hh"
#include "gpu/gpu.hh"
#include "mem/dram_sched.hh"
#include "simt/coalescer.hh"
#include "workloads/vecadd.hh"

namespace {

using namespace gpulat;

void
BM_CacheAccess(benchmark::State &state)
{
    StatRegistry stats;
    CacheParams params;
    params.capacityBytes = 64 * 1024;
    params.lineBytes = 128;
    params.ways = 8;
    Cache cache("bm.cache", params, &stats);
    Rng rng(1);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr line = rng.below(4096) * 128;
        if (cache.access(line, false, now) == CacheOutcome::Miss)
            cache.fill(line, now);
        ++now;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void
BM_Coalesce(benchmark::State &state)
{
    const bool scattered = state.range(0) != 0;
    std::array<Addr, kWarpSize> addrs{};
    Rng rng(2);
    for (unsigned lane = 0; lane < kWarpSize; ++lane)
        addrs[lane] = scattered ? rng.below(1 << 20) * 8 : lane * 8;
    for (auto _ : state) {
        auto txns = coalesce(addrs, kFullMask, 128);
        benchmark::DoNotOptimize(txns);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kWarpSize));
}
BENCHMARK(BM_Coalesce)->Arg(0)->Arg(1);

void
BM_FrFcfsPick(benchmark::State &state)
{
    StatRegistry stats;
    DramParams params;
    DramChannel channel("bm.dram", params, &stats);
    std::deque<MemRequest> queue;
    Rng rng(3);
    for (int i = 0; i < 32; ++i) {
        MemRequest req;
        req.lineAddr = rng.below(1 << 16) * 128;
        queue.push_back(req);
    }
    Cycle now = 1;
    for (auto _ : state) {
        auto pick = pickDramRequest(DramSchedPolicy::FRFCFS, queue,
                                    channel, now);
        benchmark::DoNotOptimize(pick);
        ++now;
    }
}
BENCHMARK(BM_FrFcfsPick);

void
BM_GpuCyclesPerSecond(benchmark::State &state)
{
    for (auto _ : state) {
        Gpu gpu(makeGF100Sim());
        VecAdd::Options opts;
        opts.n = 1 << 14;
        VecAdd workload(opts);
        auto result = workload.run(gpu);
        benchmark::DoNotOptimize(result);
        state.counters["sim_cycles"] = static_cast<double>(
            result.cycles);
    }
}
BENCHMARK(BM_GpuCyclesPerSecond)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
