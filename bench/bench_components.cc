/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot
 * components: cache accesses, coalescing, DRAM scheduling,
 * whole-GPU cycles/second and the ParallelRunner's sweep
 * throughput. The GPU-level benches run through runExperiment();
 * a verification failure in any of them makes the binary exit
 * nonzero like the rest of the bench suite.
 */

#include <atomic>

#include <benchmark/benchmark.h>

#include "api/parallel_runner.hh"
#include "cache/cache.hh"
#include "common/random.hh"
#include "gpu/gpu.hh"
#include "mem/dram_sched.hh"
#include "simt/coalescer.hh"

namespace {

using namespace gpulat;

/** Any experiment failed verification (checked by main()). */
std::atomic<bool> g_verificationFailed{false};

void
BM_CacheAccess(benchmark::State &state)
{
    StatRegistry stats;
    CacheParams params;
    params.capacityBytes = 64 * 1024;
    params.lineBytes = 128;
    params.ways = 8;
    Cache cache("bm.cache", params, &stats);
    Rng rng(1);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr line = rng.below(4096) * 128;
        if (cache.access(line, false, now) == CacheOutcome::Miss)
            cache.fill(line, now);
        ++now;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void
BM_Coalesce(benchmark::State &state)
{
    const bool scattered = state.range(0) != 0;
    std::array<Addr, kWarpSize> addrs{};
    Rng rng(2);
    for (unsigned lane = 0; lane < kWarpSize; ++lane)
        addrs[lane] = scattered ? rng.below(1 << 20) * 8 : lane * 8;
    for (auto _ : state) {
        auto txns = coalesce(addrs, kFullMask, 128);
        benchmark::DoNotOptimize(txns);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kWarpSize));
}
BENCHMARK(BM_Coalesce)->Arg(0)->Arg(1);

void
BM_FrFcfsPick(benchmark::State &state)
{
    StatRegistry stats;
    DramParams params;
    DramChannel channel("bm.dram", params, &stats);
    std::deque<MemRequest> queue;
    Rng rng(3);
    for (int i = 0; i < 32; ++i) {
        MemRequest req;
        req.lineAddr = rng.below(1 << 16) * 128;
        queue.push_back(req);
    }
    Cycle now = 1;
    for (auto _ : state) {
        auto pick = pickDramRequest(DramSchedPolicy::FRFCFS, queue,
                                    channel, now);
        benchmark::DoNotOptimize(pick);
        ++now;
    }
}
BENCHMARK(BM_FrFcfsPick);

void
BM_GpuCyclesPerSecond(benchmark::State &state)
{
    ExperimentSpec spec;
    spec.workload = "vecadd";
    spec.params = {"n=" + std::to_string(1 << 14)};
    for (auto _ : state) {
        const ExperimentRecord rec = runExperiment(spec);
        if (!rec.correct) {
            g_verificationFailed = true;
            state.SkipWithError("vecadd did not verify");
            break;
        }
        benchmark::DoNotOptimize(rec.cycles);
        state.counters["sim_cycles"] =
            static_cast<double>(rec.cycles);
    }
}
BENCHMARK(BM_GpuCyclesPerSecond)->Unit(benchmark::kMillisecond);

/**
 * Sweep throughput at 1 / hardware-concurrency workers: the same
 * 4-cell vecadd sweep through the ParallelRunner. The serial and
 * parallel rows dividing out is the measured multi-core speedup.
 */
void
BM_ParallelSweep(benchmark::State &state)
{
    const std::size_t jobs = state.range(0) != 0
        ? static_cast<std::size_t>(state.range(0))
        : resolveJobs(0);
    ExperimentSpec spec;
    spec.gpu = "gf106";
    spec.workload = "vecadd";
    spec.params = {"n=2048,4096"};
    spec.overrides = {"sm.warpSlots=8,16"};
    const auto specs = expandSweep(spec);
    for (auto _ : state) {
        const auto outcomes = ParallelRunner(jobs).run(specs);
        for (const JobOutcome &outcome : outcomes) {
            if (outcome.failed || !outcome.record.correct) {
                g_verificationFailed = true;
                state.SkipWithError("sweep cell did not verify");
                return;
            }
        }
        benchmark::DoNotOptimize(outcomes);
    }
    state.counters["jobs"] = static_cast<double>(jobs);
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * specs.size()));
}
BENCHMARK(BM_ParallelSweep)
    ->Arg(1)
    ->Arg(0) // 0 = hardware concurrency
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return g_verificationFailed ? 1 : 0;
}
