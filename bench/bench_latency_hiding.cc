/**
 * @file
 * Latency-hiding curve: exposed latency fraction and IPC as the
 * number of warp slots per SM rises (1 ... 48). Reproduces the
 * paper's framing that GPUs hide latency through thread-level
 * parallelism — and its point that even a throughput architecture
 * leaves much of BFS's latency exposed.
 *
 * Driven through the experiment API; each sweep point derives its
 * block size / blocks-per-SM from the warp count, so the points
 * are built programmatically rather than from one comma list.
 */

#include <algorithm>
#include <iostream>
#include <string>

#include "api/experiment.hh"
#include "common/types.hh"

namespace {

/** Blocks must fit the shrunken SM: cap threads at warps*32. */
unsigned
blockSize(unsigned warps)
{
    return std::min(256u, warps * gpulat::kWarpSize);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpulat;

    MultiSink sinks;
    sinks.add(std::make_unique<TextTableSink>(std::cout));
    addOutputSinks(sinks, argc, argv);

    const struct
    {
        const char *workload;
        std::vector<std::string> params;
    } cells[] = {
        {"vecadd", {"n=65536"}},
        {"bfs", {"kind=rmat", "scale=13"}},
    };

    bool all_correct = true;
    for (const auto &cell : cells) {
        for (unsigned warps : {1u, 2u, 4u, 8u, 16u, 32u, 48u}) {
            const unsigned tpb = blockSize(warps);
            ExperimentSpec spec;
            spec.workload = cell.workload;
            spec.params = cell.params;
            spec.params.push_back("threadsPerBlock=" +
                                  std::to_string(tpb));
            spec.overrides = {
                "sm.warpSlots=" + std::to_string(warps),
                "sm.maxBlocksPerSm=" +
                    std::to_string(
                        std::max(1u, warps * kWarpSize / tpb))};
            const ExperimentRecord rec = runExperiment(spec);
            all_correct = all_correct && rec.correct;
            sinks.write(rec);
        }
    }

    std::cout << "Latency hiding vs warps per SM (GF100-sim)\n\n";
    sinks.finish();
    std::cout << "\nexpected shape: exposure falls and IPC rises "
                 "with more warps; vecadd hides almost everything "
                 "at high occupancy while BFS stays substantially "
                 "exposed (the paper's headline finding).\n";
    return all_correct ? 0 : 1;
}
