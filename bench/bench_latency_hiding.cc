/**
 * @file
 * Latency-hiding curve: exposed latency fraction and IPC as the
 * number of warp slots per SM rises (1 ... 48). Reproduces the
 * paper's framing that GPUs hide latency through thread-level
 * parallelism — and its point that even a throughput architecture
 * leaves much of BFS's latency exposed.
 */

#include <iostream>

#include "common/table.hh"
#include "gpu/gpu.hh"
#include "latency/exposure.hh"
#include "workloads/bfs.hh"
#include "workloads/vecadd.hh"

namespace {

/** Blocks must fit the shrunken SM: cap threads at warps*32. */
unsigned
blockSize(unsigned warps)
{
    return std::min(256u, warps * gpulat::kWarpSize);
}

template <typename MakeWorkload>
void
sweep(const std::string &label, MakeWorkload make,
      gpulat::TextTable &table)
{
    using namespace gpulat;
    for (unsigned warps : {1u, 2u, 4u, 8u, 16u, 32u, 48u}) {
        GpuConfig cfg = makeGF100Sim();
        cfg.sm.warpSlots = warps;
        cfg.sm.maxBlocksPerSm =
            std::max(1u, warps * kWarpSize / blockSize(warps));
        Gpu gpu(cfg);
        auto workload = make(blockSize(warps));
        const WorkloadResult result = workload->run(gpu);
        const ExposureBreakdown eb =
            computeExposure(gpu.exposure().records(), 48);
        const double ipc = result.cycles
            ? static_cast<double>(result.instructions) /
                  static_cast<double>(result.cycles)
            : 0.0;
        table.addRow({label + (result.correct ? "" : " (FAILED)"),
                      std::to_string(warps),
                      std::to_string(result.cycles),
                      formatDouble(eb.overallExposedPct(), 1),
                      formatDouble(ipc, 2)});
    }
}

} // namespace

int
main()
{
    using namespace gpulat;

    TextTable table({"workload", "warps/SM", "cycles", "exposed %",
                     "IPC"});

    sweep("vecadd",
          [](unsigned tpb) {
              VecAdd::Options opts;
              opts.n = 1 << 16;
              opts.threadsPerBlock = tpb;
              return std::make_unique<VecAdd>(opts);
          },
          table);

    sweep("bfs",
          [](unsigned tpb) {
              Bfs::Options opts;
              opts.kind = Bfs::GraphKind::Rmat;
              opts.scale = 13;
              opts.threadsPerBlock = tpb;
              return std::make_unique<Bfs>(opts);
          },
          table);

    std::cout << "Latency hiding vs warps per SM (GF100-sim)\n\n";
    table.print(std::cout);
    std::cout << "\nexpected shape: exposure falls and IPC rises "
                 "with more warps; vecadd hides almost everything "
                 "at high occupancy while BFS stays substantially "
                 "exposed (the paper's headline finding).\n";
    return 0;
}
