/**
 * @file
 * L1 policy ablation: the architectural change the paper's Table I
 * exposes — Fermi caches global loads in the L1, Kepler restricts
 * the L1 to local data, Maxwell drops it — replayed on one machine.
 * Same GF100-sim chip, three L1 policies, same workloads.
 */

#include <iostream>

#include "common/table.hh"
#include "gpu/gpu.hh"
#include "workloads/bfs.hh"
#include "workloads/spmv.hh"
#include "workloads/stencil.hh"

namespace {

struct Policy
{
    const char *name;
    bool l1Enabled;
    bool l1Global;
};

} // namespace

int
main()
{
    using namespace gpulat;

    const Policy policies[] = {
        {"fermi (L1 global+local)", true, true},
        {"kepler (L1 local-only)", true, false},
        {"maxwell (no L1)", false, false},
    };

    TextTable table({"workload", "L1 policy", "cycles",
                     "mean load lat", "L1 hit %"});

    auto run_workload = [&](const std::string &label,
                            auto make_workload) {
        for (const Policy &policy : policies) {
            GpuConfig cfg = makeGF100Sim();
            cfg.sm.l1Enabled = policy.l1Enabled;
            cfg.sm.l1CachesGlobal = policy.l1Global;
            Gpu gpu(cfg);
            auto workload = make_workload();
            const WorkloadResult result = workload->run(gpu);

            double sum = 0.0;
            for (const auto &t : gpu.latencies().traces())
                sum += static_cast<double>(t.total());
            const double mean = gpu.latencies().count()
                ? sum / static_cast<double>(gpu.latencies().count())
                : 0.0;

            std::uint64_t hits = 0;
            std::uint64_t misses = 0;
            if (policy.l1Enabled) {
                for (unsigned s = 0; s < cfg.numSms; ++s) {
                    hits += gpu.sm(s).l1()->hits();
                    misses += gpu.sm(s).l1()->misses();
                }
            }
            const double hit_pct = hits + misses
                ? 100.0 * static_cast<double>(hits) /
                      static_cast<double>(hits + misses)
                : 0.0;

            table.addRow({label + (result.correct ? "" : " (FAILED)"),
                          policy.name,
                          std::to_string(result.cycles),
                          formatDouble(mean, 1),
                          formatDouble(hit_pct, 1)});
        }
    };

    run_workload("bfs", [] {
        Bfs::Options opts;
        opts.kind = Bfs::GraphKind::Rmat;
        opts.scale = 13;
        return std::make_unique<Bfs>(opts);
    });
    run_workload("spmv", [] {
        SpMV::Options opts;
        opts.rows = 1 << 12;
        return std::make_unique<SpMV>(opts);
    });
    run_workload("stencil2d", [] {
        Stencil2D::Options opts;
        opts.width = 256;
        opts.height = 128;
        return std::make_unique<Stencil2D>(opts);
    });

    std::cout << "L1 policy ablation (GF100-sim): the Fermi -> "
                 "Kepler -> Maxwell global-memory L1 retreat\n\n";
    table.print(std::cout);
    std::cout << "\nexpected shape: removing the L1 from the global "
                 "path raises mean load latency (every access "
                 "starts at the L2, exactly Table I's Kepler/"
                 "Maxwell observation).\n";
    return 0;
}
