/**
 * @file
 * L1 policy ablation: the architectural change the paper's Table I
 * exposes — Fermi caches global loads in the L1, Kepler restricts
 * the L1 to local data, Maxwell drops it — replayed on one machine.
 * Same GF100-sim chip, three L1 policies, same workloads.
 *
 * Driven through the experiment API: each policy is a pair of
 * config overrides on the same preset.
 */

#include <iostream>
#include <vector>

#include "api/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace gpulat;

    MultiSink sinks;
    sinks.add(std::make_unique<TextTableSink>(
        std::cout, std::vector<std::string>{"l1_hit_pct"}));
    addOutputSinks(sinks, argc, argv);

    const std::vector<std::vector<std::string>> policies = {
        // fermi: L1 caches global+local (the preset default)
        {"sm.l1Enabled=true", "sm.l1CachesGlobal=true"},
        // kepler: L1 local-only
        {"sm.l1Enabled=true", "sm.l1CachesGlobal=false"},
        // maxwell: no L1 at all
        {"sm.l1Enabled=false"},
    };

    const struct
    {
        const char *workload;
        std::vector<std::string> params;
    } cells[] = {
        {"bfs", {"scale=13"}},
        {"spmv", {"rows=4096"}},
        {"stencil2d", {"width=256", "height=128"}},
    };

    bool all_correct = true;
    for (const auto &cell : cells) {
        for (const auto &policy : policies) {
            ExperimentSpec spec;
            spec.workload = cell.workload;
            spec.params = cell.params;
            spec.overrides = policy;
            const ExperimentRecord rec = runExperiment(spec);
            all_correct = all_correct && rec.correct;
            sinks.write(rec);
        }
    }

    std::cout << "L1 policy ablation (GF100-sim): the Fermi -> "
                 "Kepler -> Maxwell global-memory L1 retreat\n\n";
    sinks.finish();
    std::cout << "\nexpected shape: removing the L1 from the global "
                 "path raises mean load latency (every access "
                 "starts at the L2, exactly Table I's Kepler/"
                 "Maxwell observation).\n";
    return all_correct ? 0 : 1;
}
