/**
 * @file
 * Regenerates Figure 1 of the paper: per-latency-bucket breakdown
 * of memory fetch latency into pipeline stages for a BFS kernel on
 * the GF100-like simulated GPU.
 *
 * Expected shape (paper): left buckets are pure "SM Base" (L1 hits);
 * long-latency buckets are dominated by the L1->ICNT queue and the
 * DRAM queue-to-scheduled (arbitration) components.
 *
 * Driven through the experiment API; the chart and ranking read the
 * raw latency traces via the run's inspect hook.
 */

#include <iostream>

#include "api/experiment.hh"
#include "latency/breakdown.hh"
#include "latency/summary.hh"

int
main(int argc, char **argv)
{
    using namespace gpulat;

    MultiSink sinks;
    addOutputSinks(sinks, argc, argv);

    ExperimentSpec spec;
    spec.workload = "bfs";
    spec.params = {"kind=rmat", "scale=14", "degree=8"};

    std::cout << "Running BFS (RMAT scale 14, edge factor 8) on "
                 "gf100-sim...\n";
    const ExperimentRecord rec =
        runExperiment(spec, [](Gpu &gpu, const ExperimentRecord &r) {
            const Breakdown bd =
                computeBreakdown(gpu.latencies().traces(), 48);
            std::cout << "BFS " << (r.correct ? "PASSED" : "FAILED")
                      << ": " << r.launches << " levels, "
                      << r.cycles << " cycles, " << r.instructions
                      << " warp instructions\n\n";
            std::cout << "Figure 1: breakdown of per-bucket memory "
                         "fetch latency into pipeline stages (BFS)\n"
                      << "requests: " << bd.requests
                      << ", latency range [" << bd.minLatency << ", "
                      << bd.maxLatency << "]\n\n";
            bd.printChart(std::cout);

            std::cout << "\nCSV:\n";
            bd.printCsv(std::cout);

            std::cout << "\nLoaded latency summary (dynamic Table-I "
                         "counterpart):\n";
            computeSummary(gpu.latencies().traces())
                .print(std::cout);

            std::cout << "\nTop latency contributors (aggregate "
                         "cycles):\n";
            for (Stage s : bd.rankedStages()) {
                std::cout
                    << "  " << toString(s) << ": "
                    << bd.totalByStage[static_cast<std::size_t>(s)]
                    << "\n";
            }
        });

    sinks.write(rec);
    sinks.finish();
    return rec.correct ? 0 : 1;
}
