/**
 * @file
 * Regenerates Figure 1 of the paper: per-latency-bucket breakdown
 * of memory fetch latency into pipeline stages for a BFS kernel on
 * the GF100-like simulated GPU.
 *
 * Expected shape (paper): left buckets are pure "SM Base" (L1 hits);
 * long-latency buckets are dominated by the L1->ICNT queue and the
 * DRAM queue-to-scheduled (arbitration) components.
 */

#include <iostream>

#include "gpu/gpu.hh"
#include "latency/breakdown.hh"
#include "latency/summary.hh"
#include "workloads/bfs.hh"

int
main()
{
    using namespace gpulat;

    Gpu gpu(makeGF100Sim());

    Bfs::Options opts;
    opts.kind = Bfs::GraphKind::Rmat;
    opts.scale = 14;
    opts.degree = 8;
    Bfs bfs(opts);

    std::cout << "Running BFS (RMAT scale " << opts.scale
              << ", edge factor " << opts.degree << ") on "
              << gpu.config().name << "...\n";
    const WorkloadResult result = bfs.run(gpu);
    std::cout << "BFS " << (result.correct ? "PASSED" : "FAILED")
              << ": " << result.launches << " levels, "
              << result.cycles << " cycles, " << result.instructions
              << " warp instructions\n\n";

    const Breakdown bd =
        computeBreakdown(gpu.latencies().traces(), 48);
    std::cout << "Figure 1: breakdown of per-bucket memory fetch "
                 "latency into pipeline stages (BFS)\n"
              << "requests: " << bd.requests << ", latency range ["
              << bd.minLatency << ", " << bd.maxLatency << "]\n\n";
    bd.printChart(std::cout);

    std::cout << "\nCSV:\n";
    bd.printCsv(std::cout);

    std::cout << "\nLoaded latency summary (dynamic Table-I "
                 "counterpart):\n";
    computeSummary(gpu.latencies().traces()).print(std::cout);

    std::cout << "\nTop latency contributors (aggregate cycles):\n";
    for (Stage s : bd.rankedStages()) {
        std::cout << "  " << toString(s) << ": "
                  << bd.totalByStage[static_cast<std::size_t>(s)]
                  << "\n";
    }
    return result.correct ? 0 : 1;
}
