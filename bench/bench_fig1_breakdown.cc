/**
 * @file
 * Regenerates Figure 1 of the paper: per-latency-bucket breakdown
 * of memory fetch latency into pipeline stages for a BFS kernel on
 * the GF100-like simulated GPU.
 *
 * Expected shape (paper): left buckets are pure "SM Base" (L1 hits);
 * long-latency buckets are dominated by the L1->ICNT queue and the
 * DRAM queue-to-scheduled (arbitration) components.
 *
 * Driven through the experiment API; the chart and ranking read the
 * raw latency traces via the run's inspect hook. A second section
 * runs the same BFS (RMAT scale 12) across every GPU preset on the
 * ParallelRunner (`--jobs N`, 0 = hardware concurrency) and compares
 * the stage mix per generation.
 */

#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "api/config_override.hh"
#include "api/parallel_runner.hh"
#include "latency/breakdown.hh"
#include "latency/summary.hh"

int
main(int argc, char **argv)
{
    using namespace gpulat;

    MultiSink sinks;
    std::size_t jobs = 0; // default: hardware concurrency
    addOutputSinks(sinks, argc, argv, &jobs);

    ExperimentSpec spec;
    spec.workload = "bfs";
    spec.params = {"kind=rmat", "scale=14", "degree=8"};

    std::cout << "Running BFS (RMAT scale 14, edge factor 8) on "
                 "gf100-sim...\n";
    const ExperimentRecord rec =
        runExperiment(spec, [](Gpu &gpu, const ExperimentRecord &r) {
            const Breakdown bd =
                computeBreakdown(gpu.latencies().traces(), 48);
            std::cout << "BFS " << (r.correct ? "PASSED" : "FAILED")
                      << ": " << r.launches << " levels, "
                      << r.cycles << " cycles, " << r.instructions
                      << " warp instructions\n\n";
            std::cout << "Figure 1: breakdown of per-bucket memory "
                         "fetch latency into pipeline stages (BFS)\n"
                      << "requests: " << bd.requests
                      << ", latency range [" << bd.minLatency << ", "
                      << bd.maxLatency << "]\n\n";
            bd.printChart(std::cout);

            std::cout << "\nCSV:\n";
            bd.printCsv(std::cout);

            std::cout << "\nLoaded latency summary (dynamic Table-I "
                         "counterpart):\n";
            computeSummary(gpu.latencies().traces())
                .print(std::cout);

            std::cout << "\nTop latency contributors (aggregate "
                         "cycles):\n";
            for (Stage s : bd.rankedStages()) {
                std::cout
                    << "  " << toString(s) << ": "
                    << bd.totalByStage[static_cast<std::size_t>(s)]
                    << "\n";
            }
        });
    sinks.write(rec);
    bool ok = rec.correct;

    // Stage mix per GPU generation: one BFS cell per preset, run
    // concurrently; records carry the stage percentages, so no
    // inspect hook is needed and output order is spec order.
    const std::size_t workers = resolveJobs(jobs);
    std::vector<ExperimentSpec> specs;
    for (const std::string &preset : configNames()) {
        ExperimentSpec cell;
        cell.gpu = preset;
        cell.workload = "bfs";
        cell.params = {"kind=rmat", "scale=12", "degree=8"};
        specs.push_back(std::move(cell));
    }

    std::cout << "\nStage mix per GPU generation (BFS, RMAT scale "
                 "12, " << workers
              << (workers == 1 ? " job" : " jobs") << "):\n"
              << std::right << std::setw(10) << "gpu"
              << std::setw(10) << "cycles" << std::setw(9) << "mean";
    for (std::size_t s = 0; s < kNumStages; ++s)
        std::cout << std::setw(10) << toString(static_cast<Stage>(s));
    std::cout << "\n";

    const auto t0 = std::chrono::steady_clock::now();
    const auto outcomes = ParallelRunner(workers).run(specs);
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - t0;

    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (outcomes[i].failed) {
            std::cout << specs[i].gpu
                      << ": ERROR: " << outcomes[i].error << "\n";
            ok = false;
            continue;
        }
        const ExperimentRecord &r = outcomes[i].record;
        sinks.write(r);
        ok = ok && r.correct;
        std::cout << std::right << std::setw(10) << r.gpu
                  << std::setw(10) << r.cycles << std::setw(9)
                  << std::fixed << std::setprecision(1)
                  << r.metric("mean_load_latency");
        for (std::size_t s = 0; s < kNumStages; ++s) {
            const double pct = r.metric(
                "stage_pct." +
                stageMetricSlug(static_cast<Stage>(s)));
            std::ostringstream cell;
            cell << std::fixed << std::setprecision(1) << pct
                 << "%";
            std::cout << std::setw(10) << cell.str();
        }
        std::cout << "\n";
    }
    std::cout << specs.size() << " presets, " << workers
              << (workers == 1 ? " job, " : " jobs, ") << std::fixed
              << std::setprecision(0) << wall.count() << " ms\n";

    sinks.finish();
    return ok ? 0 : 1;
}
