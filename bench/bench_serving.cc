/**
 * @file
 * Multi-tenant serving bench: the serve.mixed scenario swept over
 * every launch-queue scheduling policy at a light and a saturating
 * load, printing the tail-latency / throughput / fairness table
 * and writing the `BENCH_serving.json` perf artifact CI uploads.
 * Under identical saturating load the policies must actually
 * differ — the bench exits nonzero unless at least two policies
 * report distinct p99 latencies (and if any run fails
 * verification).
 *
 * `--quick` shrinks the scenario (fewer launches, two policies,
 * engine.tickJobs=4) for the TSan CI lane, which cares about the
 * scheduler/SM interaction under worker-parallel ticking rather
 * than the policy spread; the spread assertion is full-mode only.
 */

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "api/experiment.hh"
#include "common/log.hh"

using namespace gpulat;

namespace {

struct Point
{
    std::string policy;
    double load = 0.0;
    ExperimentRecord rec;
    double wallMs = 0.0;
};

double
metric(const ExperimentRecord &rec, const std::string &key)
{
    const auto it = rec.metrics.find(key);
    return it == rec.metrics.end() ? 0.0 : it->second;
}

Point
runPoint(const std::string &policy, double load, unsigned launches,
         bool quick)
{
    ExperimentSpec spec;
    spec.workload = "serve.mixed";
    spec.params = {"launches=" + std::to_string(launches),
                   "load=" + std::to_string(load)};
    spec.overrides = {"serving.policy=" + policy};
    if (quick)
        spec.overrides.push_back("engine.tickJobs=4");

    const auto t0 = std::chrono::steady_clock::now();
    Point p;
    p.policy = policy;
    p.load = load;
    p.rec = runExperiment(spec);
    p.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    return p;
}

void
writeArtifact(const std::string &path,
              const std::vector<Point> &points, bool spread_ok)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write '", path, "'");
    os << "{\n  \"schema\": \"gpulat.bench_serving.v1\",\n"
       << "  \"bench\": \"serving\",\n"
       << "  \"workload\": \"serve.mixed\",\n"
       << "  \"p99_spread_across_policies\": "
       << (spread_ok ? "true" : "false") << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        os << "    {\"policy\": \"" << p.policy
           << "\", \"load\": " << p.load << ", \"correct\": "
           << (p.rec.correct ? "true" : "false")
           << ", \"cycles\": " << p.rec.cycles << std::fixed
           << std::setprecision(2) << ", \"p50_latency\": "
           << metric(p.rec, "serving.p50_latency")
           << ", \"p99_latency\": "
           << metric(p.rec, "serving.p99_latency")
           << ", \"p999_latency\": "
           << metric(p.rec, "serving.p999_latency")
           << ", \"throughput_lpmc\": "
           << metric(p.rec, "serving.throughput_lpmc")
           << ", \"fairness_jain\": " << std::setprecision(4)
           << metric(p.rec, "serving.fairness_jain")
           << ", \"mean_queue_cycles\": " << std::setprecision(2)
           << metric(p.rec, "serving.mean_queue_cycles")
           << ", \"mean_exec_cycles\": "
           << metric(p.rec, "serving.mean_exec_cycles")
           << ", \"wall_ms\": " << p.wallMs << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string artifact;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--serving-json") {
            if (i + 1 >= argc)
                fatal("'--serving-json' needs a file path");
            artifact = argv[++i];
        } else if (arg == "--quick") {
            quick = true;
        } else {
            fatal("unknown option '", arg,
                  "' (expected --serving-json FILE or --quick)");
        }
    }

    const std::vector<std::string> policies =
        quick ? std::vector<std::string>{"fifo", "sjf-est"}
              : std::vector<std::string>{"fifo", "rr", "sjf-est",
                                         "fair-share"};
    const std::vector<double> loads =
        quick ? std::vector<double>{8.0} : std::vector<double>{1.0,
                                                               12.0};
    const unsigned launches = quick ? 4 : 10;

    std::cout << "Multi-tenant serving: serve.mixed, "
              << policies.size() << " policies x " << loads.size()
              << " loads, " << launches << " launches/tenant\n\n"
              << std::left << std::setw(12) << "policy"
              << std::right << std::setw(6) << "load"
              << std::setw(9) << "p50" << std::setw(9) << "p99"
              << std::setw(9) << "p999" << std::setw(10) << "tput"
              << std::setw(8) << "jain" << std::setw(9) << "queue"
              << std::setw(9) << "exec" << std::setw(9) << "ok"
              << "\n";

    std::vector<Point> points;
    bool all_correct = true;
    for (const double load : loads) {
        for (const std::string &policy : policies) {
            Point p = runPoint(policy, load, launches, quick);
            all_correct &= p.rec.correct;
            std::cout << std::left << std::setw(12) << p.policy
                      << std::right << std::fixed
                      << std::setprecision(0) << std::setw(6)
                      << p.load << std::setw(9)
                      << metric(p.rec, "serving.p50_latency")
                      << std::setw(9)
                      << metric(p.rec, "serving.p99_latency")
                      << std::setw(9)
                      << metric(p.rec, "serving.p999_latency")
                      << std::setprecision(1) << std::setw(10)
                      << metric(p.rec, "serving.throughput_lpmc")
                      << std::setprecision(3) << std::setw(8)
                      << metric(p.rec, "serving.fairness_jain")
                      << std::setprecision(0) << std::setw(9)
                      << metric(p.rec, "serving.mean_queue_cycles")
                      << std::setw(9)
                      << metric(p.rec, "serving.mean_exec_cycles")
                      << std::setw(9)
                      << (p.rec.correct ? "yes" : "NO") << "\n";
            points.push_back(std::move(p));
        }
        std::cout << "\n";
    }

    // Under the saturating load the policies must actually change
    // the tail: at least two distinct p99 values.
    bool spread_ok = true;
    if (!quick) {
        const double heavy = loads.back();
        std::set<double> p99s;
        for (const Point &p : points)
            if (p.load == heavy)
                p99s.insert(metric(p.rec, "serving.p99_latency"));
        spread_ok = p99s.size() >= 2;
        if (!spread_ok)
            std::cout << "FAIL: all policies report the same p99 "
                         "under saturating load\n";
    }

    if (!artifact.empty())
        writeArtifact(artifact, points, spread_ok);
    return all_correct && spread_ok ? 0 : 1;
}
