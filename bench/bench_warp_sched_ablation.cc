/**
 * @file
 * Warp scheduler ablation: LRR vs GTO on every workload — how much
 * of load latency each policy manages to hide (extension experiment
 * motivated by the paper's latency-hiding discussion).
 */

#include <iostream>

#include "common/table.hh"
#include "gpu/gpu.hh"
#include "latency/exposure.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace gpulat;

    TextTable table({"workload", "warp sched", "cycles",
                     "exposed %", "IPC"});

    for (auto policy : {SchedPolicy::LRR, SchedPolicy::GTO}) {
        for (auto &workload : makeAllWorkloads(1.0)) {
            GpuConfig cfg = makeGF100Sim();
            cfg.sm.schedPolicy = policy;
            Gpu gpu(cfg);
            const WorkloadResult result = workload->run(gpu);
            const ExposureBreakdown eb =
                computeExposure(gpu.exposure().records(), 48);
            const double ipc = result.cycles
                ? static_cast<double>(result.instructions) /
                      static_cast<double>(result.cycles)
                : 0.0;
            table.addRow({workload->name() +
                              (result.correct ? "" : " (FAILED)"),
                          toString(policy),
                          std::to_string(result.cycles),
                          formatDouble(eb.overallExposedPct(), 1),
                          formatDouble(ipc, 2)});
        }
    }

    std::cout << "Warp scheduler ablation (GF100-sim): LRR vs GTO\n\n";
    table.print(std::cout);
    return 0;
}
