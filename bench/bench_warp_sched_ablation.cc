/**
 * @file
 * Warp scheduler ablation: LRR vs GTO on every workload — how much
 * of load latency each policy manages to hide (extension experiment
 * motivated by the paper's latency-hiding discussion).
 *
 * Driven through the experiment API: the sweep is one spec per
 * (policy, workload) cell; `--json FILE` / `--csv FILE` emit
 * machine-readable records.
 */

#include <iostream>

#include "api/experiment.hh"
#include "api/workload_registry.hh"

int
main(int argc, char **argv)
{
    using namespace gpulat;

    MultiSink sinks;
    sinks.add(std::make_unique<TextTableSink>(std::cout));
    addOutputSinks(sinks, argc, argv);

    bool all_correct = true;
    for (const char *policy : {"lrr", "gto"}) {
        for (const std::string &name :
             WorkloadRegistry::instance().names()) {
            ExperimentSpec spec;
            spec.workload = name;
            spec.overrides = {std::string("sm.schedPolicy=") +
                              policy};
            const ExperimentRecord rec = runExperiment(spec);
            all_correct = all_correct && rec.correct;
            sinks.write(rec);
        }
    }

    std::cout << "Warp scheduler ablation (GF100-sim): LRR vs GTO\n\n";
    sinks.finish();
    return all_correct ? 0 : 1;
}
