/**
 * @file
 * Regenerates Table I of the paper: idle latencies of the global
 * memory pipeline (L1 hit / L2 hit / DRAM) measured by single-thread
 * pointer chasing on the four simulated GPU generations.
 *
 * Paper reference values (clock cycles):
 *
 *   Unit   GT200  GF106  GK104  GM107
 *   L1 D$  x      45     30     x
 *   L2 D$  x      310    175    194
 *   DRAM   440    685    300    350
 */

#include <iostream>

#include "microbench/table1.hh"

int
main()
{
    using namespace gpulat;

    std::cout << "Table I: Latencies of memory loads through the "
                 "global memory pipeline\n"
              << "(measured by pointer-chase microbenchmark; "
                 "cycles in the hot clock domain)\n\n";

    Table1Options opts;
    opts.timedAccesses = 1024;
    opts.fullLadder = true;
    const auto columns = measureTable1(opts);
    printTable1(std::cout, columns);

    std::cout << "\npaper reference:\n"
              << "Unit   GT200  GF106  GK104  GM107\n"
              << "L1 D$  x      45     30     x\n"
              << "L2 D$  x      310    175    194\n"
              << "DRAM   440    685    300    350\n";
    return 0;
}
