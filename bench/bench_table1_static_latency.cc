/**
 * @file
 * Regenerates Table I of the paper: idle latencies of the global
 * memory pipeline (L1 hit / L2 hit / DRAM) measured by single-thread
 * pointer chasing on the four simulated GPU generations.
 *
 * Driven through the experiment API: every probe is one `pchase`
 * ExperimentSpec (preset x memory level), the cells run concurrently
 * on the ParallelRunner (`--jobs N`, 0 = hardware concurrency), the
 * records stream to any `--json/--csv` sinks, and the bench exits
 * nonzero unless every measured cell verifies (chain provably
 * followed) and lands within tolerance of the paper's reference:
 *
 *   Unit   GT200  GF106  GK104  GM107
 *   L1 D$  x      45     30     x
 *   L2 D$  x      310    175    194
 *   DRAM   440    685    300    350
 */

#include <chrono>
#include <iomanip>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/parallel_runner.hh"
#include "gpu/gpu_config.hh"
#include "microbench/table1.hh"

using namespace gpulat;

namespace {

/** Acceptable relative deviation from the paper's cycle counts. */
constexpr double kTolerance = 0.10;

struct Probe
{
    std::string gpu;     ///< preset name
    const char *unit;    ///< "L1 D$" / "L2 D$" / "DRAM"
    double paperCycles;  ///< reference value (0 = none published)
    ExperimentSpec spec;
};

ExperimentSpec
probeSpec(const GpuConfig &cfg, const char *space,
          std::uint64_t footprint, bool warmup)
{
    ExperimentSpec spec;
    spec.gpu = cfg.name;
    spec.workload = "pchase";
    spec.params = {
        std::string("space=") + space,
        "footprintBytes=" + std::to_string(footprint),
        "strideBytes=" + std::to_string(cfg.sm.lineBytes),
        "timedAccesses=1024",
        warmup ? "warmup=true" : "warmup=false",
    };
    // Local chases need the per-thread local window to hold the
    // whole chain (same adjustment sweepFootprints() makes).
    if (std::string(space) == "local") {
        spec.overrides = {"localBytesPerThread=" +
                          std::to_string(footprint)};
    }
    return spec;
}

/**
 * The probe plan, derived from each preset's cache topology like
 * measureGeneration(): a half-capacity footprint pins the chase to
 * one hierarchy level; beyond the last cache the (cold) chase skips
 * its warm-up traversal.
 */
std::vector<Probe>
buildProbes()
{
    std::vector<Probe> probes;
    struct PaperColumn
    {
        const char *preset;
        double l1, l2, dram; ///< 0 = not published ("x")
    };
    const std::vector<PaperColumn> paper{
        {"gt200", 0, 0, 440},
        {"gf106", 45, 310, 685},
        {"gk104", 30, 175, 300},
        {"gm107", 0, 194, 350},
    };

    for (const PaperColumn &col : paper) {
        const GpuConfig cfg = makeConfig(col.preset);
        const std::uint64_t l1 = cfg.sm.l1Cache.capacityBytes;
        const std::uint64_t l2 = cfg.totalL2Bytes();

        if (cfg.sm.l1Enabled && cfg.sm.l1CachesGlobal) {
            probes.push_back({col.preset, "L1 D$", col.l1,
                              probeSpec(cfg, "global", l1 / 2,
                                        true)});
        } else if (cfg.sm.l1Enabled && cfg.sm.l1CachesLocal) {
            // Kepler: the L1 is visible through local space only.
            probes.push_back({col.preset, "L1 D$", col.l1,
                              probeSpec(cfg, "local", l1 / 2,
                                        true)});
        }
        if (cfg.partition.l2Enabled) {
            probes.push_back({col.preset, "L2 D$", col.l2,
                              probeSpec(cfg, "global", l2 / 2,
                                        true)});
        }
        const std::uint64_t dram_fp =
            l2 ? l2 * 3 : std::uint64_t{1} << 20;
        probes.push_back({col.preset, "DRAM", col.dram,
                          probeSpec(cfg, "global", dram_fp, false)});
    }
    return probes;
}

} // namespace

int
main(int argc, char **argv)
{
    MultiSink sinks;
    std::size_t jobs = 0; // default: hardware concurrency
    addOutputSinks(sinks, argc, argv, &jobs);

    std::cout << "Table I: Latencies of memory loads through the "
                 "global memory pipeline\n"
              << "(pchase experiment cells on the ParallelRunner; "
                 "cycles in the hot clock domain)\n\n";

    const std::vector<Probe> probes = buildProbes();
    std::vector<ExperimentSpec> specs;
    specs.reserve(probes.size());
    for (const Probe &p : probes)
        specs.push_back(p.spec);

    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t workers = resolveJobs(jobs);
    const auto outcomes = ParallelRunner(workers).run(specs);
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - t0;

    // Assemble the paper's table from the records.
    std::vector<Table1Column> columns;
    bool ok = true;
    for (std::size_t i = 0; i < probes.size(); ++i) {
        const Probe &probe = probes[i];
        if (columns.empty() || columns.back().gpu != probe.gpu)
            columns.push_back(Table1Column{probe.gpu, {}, {}, {}});

        if (outcomes[i].failed) {
            std::cout << probe.gpu << " " << probe.unit
                      << ": ERROR: " << outcomes[i].error << "\n";
            ok = false;
            continue;
        }
        const ExperimentRecord &rec = outcomes[i].record;
        sinks.write(rec);
        if (!rec.correct) {
            std::cout << probe.gpu << " " << probe.unit
                      << ": chase chain did not verify\n";
            ok = false;
        }
        const double cycles =
            rec.metric("pchase_cycles_per_access");
        auto &column = columns.back();
        if (std::string(probe.unit) == "L1 D$")
            column.l1 = cycles;
        else if (std::string(probe.unit) == "L2 D$")
            column.l2 = cycles;
        else
            column.dram = cycles;
    }
    sinks.finish();

    printTable1(std::cout, columns);

    std::cout << "\nverification against the paper (tolerance "
              << std::fixed << std::setprecision(0)
              << kTolerance * 100 << "%):\n";
    for (std::size_t i = 0; i < probes.size(); ++i) {
        const Probe &probe = probes[i];
        if (probe.paperCycles == 0 || outcomes[i].failed)
            continue;
        const double measured =
            outcomes[i].record.metric("pchase_cycles_per_access");
        const double rel =
            (measured - probe.paperCycles) / probe.paperCycles;
        const bool pass = rel >= -kTolerance && rel <= kTolerance;
        ok = ok && pass;
        std::cout << "  " << std::left << std::setw(6) << probe.gpu
                  << std::setw(7) << probe.unit << std::right
                  << std::setw(7) << std::setprecision(1) << measured
                  << "  paper " << std::setw(4)
                  << std::setprecision(0) << probe.paperCycles
                  << "  " << std::showpos << std::setprecision(1)
                  << rel * 100 << "%" << std::noshowpos
                  << (pass ? "" : "  OUT OF TOLERANCE") << "\n";
    }

    std::cout << "\n" << probes.size() << " probes, " << workers
              << (workers == 1 ? " job, " : " jobs, ")
              << std::setprecision(0) << wall.count() << " ms\n"
              << (ok ? "PASSED" : "FAILED") << "\n";
    return ok ? 0 : 1;
}
