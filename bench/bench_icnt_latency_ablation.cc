/**
 * @file
 * Interconnect latency ablation: sweep the crossbar traversal
 * latency and watch end-to-end runtime — the direct experiment
 * behind the paper's conclusion that "latency should also be a GPU
 * design consideration besides throughput". If GPUs hid latency
 * perfectly, runtime would not move; it does.
 */

#include <iostream>

#include "common/table.hh"
#include "gpu/gpu.hh"
#include "latency/exposure.hh"
#include "workloads/bfs.hh"
#include "workloads/compute_stream.hh"

namespace {

template <typename MakeWorkload>
void
sweep(const std::string &label, MakeWorkload make,
      gpulat::TextTable &table)
{
    using namespace gpulat;
    for (Cycle icnt : {10u, 20u, 40u, 80u, 160u}) {
        GpuConfig cfg = makeGF100Sim();
        cfg.icntLatency = icnt;
        Gpu gpu(cfg);
        auto workload = make();
        const WorkloadResult result = workload->run(gpu);
        const ExposureBreakdown eb =
            computeExposure(gpu.exposure().records(), 48);
        table.addRow({label + (result.correct ? "" : " (FAILED)"),
                      std::to_string(icnt),
                      std::to_string(result.cycles),
                      formatDouble(eb.overallExposedPct(), 1)});
    }
}

} // namespace

int
main()
{
    using namespace gpulat;

    TextTable table({"workload", "icnt latency", "cycles",
                     "exposed %"});

    sweep("bfs",
          [] {
              Bfs::Options opts;
              opts.kind = Bfs::GraphKind::Rmat;
              opts.scale = 13;
              return std::make_unique<Bfs>(opts);
          },
          table);
    sweep("compute_stream",
          [] {
              ComputeStream::Options opts;
              opts.n = 1 << 15;
              opts.fmaDepth = 32;
              return std::make_unique<ComputeStream>(opts);
          },
          table);

    std::cout << "Interconnect latency ablation (GF100-sim)\n\n";
    table.print(std::cout);
    std::cout << "\nexpected shape: BFS runtime degrades steeply "
                 "with added latency (exposed); the compute-heavy "
                 "stream degrades far less (hidden).\n";
    return 0;
}
