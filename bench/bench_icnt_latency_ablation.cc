/**
 * @file
 * Interconnect latency ablation: sweep the crossbar traversal
 * latency and watch end-to-end runtime — the direct experiment
 * behind the paper's conclusion that "latency should also be a GPU
 * design consideration besides throughput". If GPUs hid latency
 * perfectly, runtime would not move; it does.
 *
 * Driven through the experiment API's sweep expansion: one spec
 * with a comma-listed icntLatency override fans out to the five
 * sweep points.
 */

#include <iostream>
#include <vector>

#include "api/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace gpulat;

    MultiSink sinks;
    sinks.add(std::make_unique<TextTableSink>(std::cout));
    addOutputSinks(sinks, argc, argv);

    const struct
    {
        const char *workload;
        std::vector<std::string> params;
    } cells[] = {
        {"bfs", {"scale=13"}},
        {"compute_stream", {"n=32768", "fmaDepth=32"}},
    };

    bool all_correct = true;
    for (const auto &cell : cells) {
        ExperimentSpec spec;
        spec.workload = cell.workload;
        spec.params = cell.params;
        spec.overrides = {"icntLatency=10,20,40,80,160"};
        for (const ExperimentSpec &point : expandSweep(spec)) {
            const ExperimentRecord rec = runExperiment(point);
            all_correct = all_correct && rec.correct;
            sinks.write(rec);
        }
    }

    std::cout << "Interconnect latency ablation (GF100-sim)\n\n";
    sinks.finish();
    std::cout << "\nexpected shape: BFS runtime degrades steeply "
                 "with added latency (exposed); the compute-heavy "
                 "stream degrades far less (hidden).\n";
    return all_correct ? 0 : 1;
}
