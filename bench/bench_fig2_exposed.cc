/**
 * @file
 * Regenerates Figure 2 of the paper: per-latency-bucket exposed vs
 * hidden fraction of global memory load latency for BFS on the
 * GF100-like simulated GPU.
 *
 * Expected shape (paper): the exposed fraction is significant,
 * sometimes close to 100%, and more than 50% for most buckets.
 */

#include <iostream>

#include "gpu/gpu.hh"
#include "latency/exposure.hh"
#include "workloads/bfs.hh"

int
main()
{
    using namespace gpulat;

    Gpu gpu(makeGF100Sim());

    Bfs::Options opts;
    opts.kind = Bfs::GraphKind::Rmat;
    opts.scale = 14;
    opts.degree = 8;
    Bfs bfs(opts);

    std::cout << "Running BFS (RMAT scale " << opts.scale
              << ") on " << gpu.config().name << "...\n";
    const WorkloadResult result = bfs.run(gpu);
    std::cout << "BFS " << (result.correct ? "PASSED" : "FAILED")
              << ", " << result.launches << " levels\n\n";

    const ExposureBreakdown eb =
        computeExposure(gpu.exposure().records(), 48);
    std::cout << "Figure 2: exposed vs hidden global load latency "
                 "(BFS)\n"
              << "loads: " << eb.loads << ", latency range ["
              << eb.minLatency << ", " << eb.maxLatency << "]\n\n";
    eb.printChart(std::cout);

    std::cout << "\nCSV:\n";
    eb.printCsv(std::cout);

    std::cout << "\noverall exposed: "
              << eb.overallExposedPct() << "% of load latency\n"
              << "loads in >50%-exposed buckets: "
              << eb.fractionOfLoadsMostlyExposed() * 100.0 << "%\n";

    // What the exposed cycles were waiting for, summed over SMs.
    std::uint64_t on_mem = 0;
    std::uint64_t on_alu = 0;
    std::uint64_t on_lsu = 0;
    std::uint64_t on_bar = 0;
    for (unsigned s = 0; s < gpu.config().numSms; ++s) {
        const std::string prefix = "sm" + std::to_string(s);
        on_mem += gpu.stats().counterValue(prefix + ".idle_on_memory");
        on_alu += gpu.stats().counterValue(prefix + ".idle_on_alu");
        on_lsu += gpu.stats().counterValue(prefix + ".idle_on_lsu");
        on_bar += gpu.stats().counterValue(prefix +
                                           ".idle_on_barrier");
    }
    std::cout << "idle-cycle causes: memory " << on_mem << ", alu "
              << on_alu << ", lsu-full " << on_lsu << ", barrier "
              << on_bar << "\n";
    return result.correct ? 0 : 1;
}
