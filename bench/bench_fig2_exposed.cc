/**
 * @file
 * Regenerates Figure 2 of the paper: per-latency-bucket exposed vs
 * hidden fraction of global memory load latency for BFS on the
 * GF100-like simulated GPU.
 *
 * Expected shape (paper): the exposed fraction is significant,
 * sometimes close to 100%, and more than 50% for most buckets.
 *
 * Driven through the experiment API; the idle-cycle causes come
 * from the record's epoch-aware aggregated counters instead of
 * hand-summed per-SM raw reads.
 */

#include <iostream>

#include "api/experiment.hh"
#include "latency/exposure.hh"

int
main(int argc, char **argv)
{
    using namespace gpulat;

    MultiSink sinks;
    addOutputSinks(sinks, argc, argv);

    ExperimentSpec spec;
    spec.workload = "bfs";
    spec.params = {"kind=rmat", "scale=14", "degree=8"};

    std::cout << "Running BFS (RMAT scale 14) on gf100-sim...\n";
    const ExperimentRecord rec =
        runExperiment(spec, [](Gpu &gpu, const ExperimentRecord &r) {
            std::cout << "BFS " << (r.correct ? "PASSED" : "FAILED")
                      << ", " << r.launches << " levels\n\n";
            const ExposureBreakdown eb =
                computeExposure(gpu.exposure().records(), 48);
            std::cout << "Figure 2: exposed vs hidden global load "
                         "latency (BFS)\n"
                      << "loads: " << eb.loads
                      << ", latency range [" << eb.minLatency
                      << ", " << eb.maxLatency << "]\n\n";
            eb.printChart(std::cout);

            std::cout << "\nCSV:\n";
            eb.printCsv(std::cout);

            std::cout << "\noverall exposed: "
                      << eb.overallExposedPct()
                      << "% of load latency\n"
                      << "loads in >50%-exposed buckets: "
                      << eb.fractionOfLoadsMostlyExposed() * 100.0
                      << "%\n";
        });

    // What the exposed cycles were waiting for, summed over SMs by
    // collectRecord() (counters are per-epoch deltas).
    auto counter = [&](const char *name) {
        auto it = rec.counters.find(name);
        return it == rec.counters.end() ? 0ull : it->second;
    };
    std::cout << "idle-cycle causes: memory "
              << counter("idle_on_memory") << ", alu "
              << counter("idle_on_alu") << ", lsu-full "
              << counter("idle_on_lsu") << ", barrier "
              << counter("idle_on_barrier") << "\n";

    sinks.write(rec);
    sinks.finish();
    return rec.correct ? 0 : 1;
}
